package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/mem"
)

// heatRamp maps a per-byte write count to a density glyph: unwritten
// bytes render as spaces, then intensity rises per power of two. The
// legend line in Render spells this out.
const heatRamp = ".:-=+*#%@"

// HeatRowBytes is the number of address-space bytes per heatmap row.
const HeatRowBytes = 64

func heatChar(count uint64) byte {
	if count == 0 {
		return ' '
	}
	idx := 0
	for c := count; c > 1 && idx < len(heatRamp)-1; c >>= 1 {
		idx++
	}
	return heatRamp[idx]
}

// HeatSegment names one address range of the observed image.
type HeatSegment struct {
	Kind string   `json:"kind"`
	Base mem.Addr `json:"base"`
	End  mem.Addr `json:"end"`
}

// HeatRegion annotates an object extent within the address space — a
// global's storage, a vptr slot inside it — so the heatmap can say
// *what* the perturbed bytes were, not just where they sit.
type HeatRegion struct {
	Name  string   `json:"name"`
	Start mem.Addr `json:"start"`
	Size  uint64   `json:"size"`
}

// Heatmap accumulates per-byte write density over a simulated address
// space. Counts are sparse (a map keyed by address), which bounds
// memory by the distinct bytes ever written rather than by the mapped
// image size; attacks touch kilobytes of a multi-hundred-KiB image.
// Writes record *attempted* stores that passed mapping and permission
// checks (see mem.AccessObserver), so a guard-faulted overflow still
// shows where it aimed. All methods are nil-safe and concurrency-safe.
type Heatmap struct {
	mu      sync.Mutex
	counts  map[mem.Addr]uint64
	segs    []HeatSegment
	regions map[string]HeatRegion // keyed by name for dedup
}

// NewHeatmap builds an empty heatmap.
func NewHeatmap() *Heatmap {
	return &Heatmap{counts: make(map[mem.Addr]uint64), regions: make(map[string]HeatRegion)}
}

// RecordWrite increments the density of each byte in [addr, addr+n).
func (h *Heatmap) RecordWrite(addr mem.Addr, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.mu.Lock()
	for i := uint64(0); i < n; i++ {
		h.counts[addr.Add(int64(i))]++
	}
	h.mu.Unlock()
}

// AddCount adds count to a single byte's write density. It is the
// stream-reconstruction counterpart of RecordWrite: pntrace -follow
// replays coalesced heat-tile deltas from a /watch stream, which carry
// accumulated per-byte counts rather than individual writes.
func (h *Heatmap) AddCount(addr mem.Addr, count uint64) {
	if h == nil || count == 0 {
		return
	}
	h.mu.Lock()
	h.counts[addr] += count
	h.mu.Unlock()
}

// SetSegmentData records segment geometry that already lives in the
// plain-data form — the shape /watch streams carry. First call wins,
// matching SetSegments.
func (h *Heatmap) SetSegmentData(segs []HeatSegment) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.segs) > 0 {
		return
	}
	h.segs = append(h.segs, segs...)
}

// SetSegments records the segment geometry used to group rows. The
// first call wins: every process in a deterministic experiment maps
// the same image, so later processes agree with the first.
func (h *Heatmap) SetSegments(segs []*mem.Segment) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.segs) > 0 {
		return
	}
	for _, s := range segs {
		h.segs = append(h.segs, HeatSegment{Kind: s.Kind.String(), Base: s.Base, End: s.End()})
	}
}

// AddRegion annotates [start, start+size) with a name. Regions with
// the same name are deduplicated (every process of a deterministic
// experiment defines its globals at the same addresses).
func (h *Heatmap) AddRegion(name string, start mem.Addr, size uint64) {
	if h == nil || size == 0 {
		return
	}
	h.mu.Lock()
	h.regions[name] = HeatRegion{Name: name, Start: start, Size: size}
	h.mu.Unlock()
}

// WrittenBytes returns the number of distinct bytes ever written.
func (h *Heatmap) WrittenBytes() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.counts)
}

// HeatRow is one rendered row: HeatRowBytes consecutive bytes.
type HeatRow struct {
	Addr   mem.Addr `json:"addr"`
	Counts []uint64 `json:"counts"`
	Cells  string   `json:"cells"`
}

// HeatSegmentData is one segment's heat, rows ascending, empty rows
// omitted.
type HeatSegmentData struct {
	HeatSegment
	WriteBytes   uint64    `json:"write_bytes_total"`
	UniqueBytes  int       `json:"unique_bytes"`
	Rows         []HeatRow `json:"rows"`
	RegionsInSeg []string  `json:"regions,omitempty"`
}

// HeatRegionData is one annotated region's summary.
type HeatRegionData struct {
	HeatRegion
	BytesWritten int    `json:"bytes_written"`
	MaxCount     uint64 `json:"max_count"`
	TotalWrites  uint64 `json:"total_writes"`
}

// HeatmapData is the heatmap's deterministic plain-data form.
type HeatmapData struct {
	Scale    string            `json:"scale"`
	RowBytes int               `json:"row_bytes"`
	Segments []HeatSegmentData `json:"segments"`
	Regions  []HeatRegionData  `json:"regions"`
}

// Data computes the plain-data rendering: segments in address order,
// only rows with at least one written byte, regions sorted by address
// then name.
func (h *Heatmap) Data() HeatmapData {
	d := HeatmapData{Scale: heatRamp, RowBytes: HeatRowBytes}
	if h == nil {
		return d
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	segs := append([]HeatSegment(nil), h.segs...)
	sort.Slice(segs, func(i, j int) bool { return segs[i].Base < segs[j].Base })

	// Bucket written addresses by row start.
	rows := make(map[mem.Addr][]uint64) // row base -> counts
	var addrs []mem.Addr
	for a := range h.counts {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		base := mem.Addr(uint64(a) / HeatRowBytes * HeatRowBytes)
		r, ok := rows[base]
		if !ok {
			r = make([]uint64, HeatRowBytes)
			rows[base] = r
		}
		r[uint64(a)-uint64(base)] = h.counts[a]
	}
	var rowBases []mem.Addr
	for b := range rows {
		rowBases = append(rowBases, b)
	}
	sort.Slice(rowBases, func(i, j int) bool { return rowBases[i] < rowBases[j] })

	findSeg := func(a mem.Addr) int {
		for i, s := range segs {
			if a >= s.Base && a < s.End {
				return i
			}
		}
		return -1
	}

	segData := make([]HeatSegmentData, len(segs))
	for i, s := range segs {
		segData[i] = HeatSegmentData{HeatSegment: s}
	}
	orphan := HeatSegmentData{HeatSegment: HeatSegment{Kind: "unmapped"}}
	for _, base := range rowBases {
		counts := rows[base]
		cells := make([]byte, HeatRowBytes)
		for i, c := range counts {
			cells[i] = heatChar(c)
		}
		row := HeatRow{Addr: base, Counts: counts, Cells: string(cells)}
		tgt := &orphan
		if i := findSeg(base); i >= 0 {
			tgt = &segData[i]
		}
		tgt.Rows = append(tgt.Rows, row)
		for _, c := range counts {
			tgt.WriteBytes += c
			if c > 0 {
				tgt.UniqueBytes++
			}
		}
	}

	// Regions: sorted by start address, then name.
	var regions []HeatRegion
	for _, r := range h.regions {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].Start != regions[j].Start {
			return regions[i].Start < regions[j].Start
		}
		return regions[i].Name < regions[j].Name
	})
	for _, r := range regions {
		rd := HeatRegionData{HeatRegion: r}
		for i := uint64(0); i < r.Size; i++ {
			if c := h.counts[r.Start.Add(int64(i))]; c > 0 {
				rd.BytesWritten++
				rd.TotalWrites += c
				if c > rd.MaxCount {
					rd.MaxCount = c
				}
			}
		}
		d.Regions = append(d.Regions, rd)
		if i := findSeg(r.Start); i >= 0 {
			segData[i].RegionsInSeg = append(segData[i].RegionsInSeg, r.Name)
		}
	}

	for _, sd := range segData {
		if len(sd.Rows) > 0 {
			d.Segments = append(d.Segments, sd)
		}
	}
	if len(orphan.Rows) > 0 {
		d.Segments = append(d.Segments, orphan)
	}
	return d
}

// Render renders the ASCII heatmap: per segment, one 64-byte row per
// line of written address space (gaps elided with a … marker), density
// glyphs per byte, and an annotated-region table underneath showing
// how many of each object's bytes the run perturbed.
func (h *Heatmap) Render() string {
	d := h.Data()
	var sb strings.Builder
	sb.WriteString("address-space write-density heatmap\n")
	sb.WriteString("scale: ' '=0")
	for i := 0; i < len(d.Scale); i++ {
		lo := uint64(1) << uint(i)
		hi := lo*2 - 1
		if i == len(d.Scale)-1 {
			fmt.Fprintf(&sb, "  %c=%d+", d.Scale[i], lo)
		} else {
			fmt.Fprintf(&sb, "  %c=%d", d.Scale[i], lo)
			if hi > lo {
				fmt.Fprintf(&sb, "-%d", hi)
			}
		}
	}
	sb.WriteString("  (writes per byte)\n")

	if len(d.Segments) == 0 {
		sb.WriteString("(no writes observed)\n")
		return sb.String()
	}
	for _, s := range d.Segments {
		fmt.Fprintf(&sb, "\nsegment %-6s [%#x,%#x)  bytes-written=%d  write-volume=%d\n",
			s.Kind, uint64(s.Base), uint64(s.End), s.UniqueBytes, s.WriteBytes)
		var prev mem.Addr
		for i, row := range s.Rows {
			if i > 0 && row.Addr != prev.Add(HeatRowBytes) {
				sb.WriteString("      …\n")
			}
			fmt.Fprintf(&sb, "  %#010x |%s|\n", uint64(row.Addr), row.Cells)
			prev = row.Addr
		}
	}
	if len(d.Regions) > 0 {
		sb.WriteString("\nannotated regions (object layouts):\n")
		w := 0
		for _, r := range d.Regions {
			if len(r.Name) > w {
				w = len(r.Name)
			}
		}
		for _, r := range d.Regions {
			fmt.Fprintf(&sb, "  %-*s  [%#x,%#x)  size=%-4d written=%d/%d  max-density=%d\n",
				w, r.Name, uint64(r.Start), uint64(r.Start.Add(int64(r.Size))),
				r.Size, r.BytesWritten, r.Size, r.MaxCount)
		}
	}
	return sb.String()
}
