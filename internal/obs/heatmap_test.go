package obs

import (
	"strings"
	"testing"

	"repro/internal/mem"
)

func TestHeatChar(t *testing.T) {
	tests := []struct {
		count uint64
		want  byte
	}{
		{0, ' '}, {1, '.'}, {2, ':'}, {3, ':'}, {4, '-'}, {7, '-'},
		{8, '='}, {16, '+'}, {32, '*'}, {64, '#'}, {128, '%'},
		{256, '@'}, {1 << 20, '@'},
	}
	for _, tc := range tests {
		if got := heatChar(tc.count); got != tc.want {
			t.Errorf("heatChar(%d) = %q, want %q", tc.count, got, tc.want)
		}
	}
}

func newHeatMemory(t *testing.T) (*mem.Memory, *Heatmap) {
	t.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	h := NewHeatmap()
	h.SetSegments(m.Segments())
	return m, h
}

func TestHeatmapRowsAndGaps(t *testing.T) {
	_, h := newHeatMemory(t)
	h.RecordWrite(0x1000, 4) // row 0x1000
	h.RecordWrite(0x1000, 4) // density 2
	h.RecordWrite(0x1800, 1) // distant row -> gap marker

	if h.WrittenBytes() != 5 {
		t.Errorf("WrittenBytes = %d, want 5", h.WrittenBytes())
	}
	d := h.Data()
	if len(d.Segments) != 1 {
		t.Fatalf("got %d segments, want 1", len(d.Segments))
	}
	s := d.Segments[0]
	if s.Kind != "bss" || s.UniqueBytes != 5 || s.WriteBytes != 9 {
		t.Errorf("segment = %+v", s)
	}
	if len(s.Rows) != 2 || s.Rows[0].Addr != 0x1000 || s.Rows[1].Addr != 0x1800 {
		t.Fatalf("rows = %+v", s.Rows)
	}
	if !strings.HasPrefix(s.Rows[0].Cells, "::::    ") {
		t.Errorf("row cells = %q, want leading \"::::\"", s.Rows[0].Cells)
	}
	out := h.Render()
	if !strings.Contains(out, "…") {
		t.Errorf("render missing gap marker:\n%s", out)
	}
	if !strings.Contains(out, "bytes-written=5  write-volume=9") {
		t.Errorf("render missing totals:\n%s", out)
	}
}

func TestHeatmapRegions(t *testing.T) {
	_, h := newHeatMemory(t)
	h.AddRegion("victim", 0x1010, 8)
	h.AddRegion("victim", 0x1010, 8) // dedup by name
	h.AddRegion("untouched", 0x1040, 4)
	h.RecordWrite(0x1010, 4)
	h.RecordWrite(0x1012, 2)

	d := h.Data()
	if len(d.Regions) != 2 {
		t.Fatalf("got %d regions, want 2 (dedup failed?)", len(d.Regions))
	}
	victim := d.Regions[0]
	if victim.Name != "victim" || victim.BytesWritten != 4 || victim.MaxCount != 2 || victim.TotalWrites != 6 {
		t.Errorf("victim = %+v", victim)
	}
	if d.Regions[1].BytesWritten != 0 {
		t.Errorf("untouched region shows writes: %+v", d.Regions[1])
	}
	out := h.Render()
	if !strings.Contains(out, "victim") || !strings.Contains(out, "written=4/8") {
		t.Errorf("render missing region summary:\n%s", out)
	}
}

func TestHeatmapOrphanWrites(t *testing.T) {
	h := NewHeatmap() // no segments registered
	h.RecordWrite(0xdead00, 2)
	d := h.Data()
	if len(d.Segments) != 1 || d.Segments[0].Kind != "unmapped" {
		t.Fatalf("segments = %+v, want one unmapped bucket", d.Segments)
	}
}

func TestHeatmapEmptyRender(t *testing.T) {
	h := NewHeatmap()
	if out := h.Render(); !strings.Contains(out, "(no writes observed)") {
		t.Errorf("empty render = %q", out)
	}
}

func TestHeatmapFirstSegmentsWin(t *testing.T) {
	m, h := newHeatMemory(t)
	m2 := &mem.Memory{}
	if _, err := m2.Map(mem.SegStack, 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	h.SetSegments(m2.Segments()) // ignored: first call won
	h.RecordWrite(0x1000, 1)
	d := h.Data()
	if len(d.Segments) != 1 || d.Segments[0].Kind != "bss" {
		t.Errorf("segments = %+v, want the first memory's bss", d.Segments)
	}
	_ = m
}
