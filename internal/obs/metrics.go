package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/report"
)

// Metric names emitted by the built-in Collector instrumentation. They
// are exported so tests and dashboards reference one spelling.
const (
	MetricReads          = "pn_mem_reads_total"
	MetricWrites         = "pn_mem_writes_total"
	MetricReadBytes      = "pn_mem_read_bytes_total"
	MetricWriteBytes     = "pn_mem_write_bytes_total"
	MetricAccessSize     = "pn_mem_access_size_bytes"
	MetricWatchpointHits = "pn_watchpoint_hits_total"
	MetricProcesses      = "pn_processes_total"
	MetricMachineEvents  = "pn_machine_events_total"
	MetricVerdicts       = "pn_defense_verdicts_total"
	MetricChaosFaults    = "pn_chaos_faults_total"
	MetricJobs           = "pn_supervisor_jobs_total"
	MetricAttempts       = "pn_supervisor_attempts_total"
	MetricRetries        = "pn_supervisor_retries_total"
	MetricCrashes        = "pn_supervisor_crashes_total"
)

// Shadow-memory sanitizer metric names (harvested from each process's
// shadow.Sanitizer at finalize).
const (
	MetricShadowPoisonOps     = "pn_shadow_poison_ops_total"
	MetricShadowUnpoisonOps   = "pn_shadow_unpoison_ops_total"
	MetricShadowQuarantines   = "pn_shadow_quarantine_ops_total"
	MetricShadowCheckedWrites = "pn_shadow_checked_writes_total"
	MetricShadowViolations    = "pn_shadow_violations_total"
	MetricShadowPoisoned      = "pn_shadow_poisoned_granules"
)

// Serving-layer metric names (emitted by internal/service and exposed
// by cmd/pnserve's /metrics endpoint).
const (
	MetricServeRequests   = "pn_serve_requests_total"
	MetricServeCache      = "pn_serve_cache_events_total"
	MetricServeShed       = "pn_serve_shed_total"
	MetricServeQueueDepth = "pn_serve_queue_depth"
	MetricServeInflight   = "pn_serve_inflight"
	MetricServeLatency    = "pn_serve_latency_ms"
	MetricServePool       = "pn_serve_pool_events_total"
)

// Admission-control metric names (per-tenant quotas, weighted fair
// queueing, the adaptive concurrency limiter, and per-tenant circuit
// breakers in internal/service).
const (
	MetricServeTenantRequests   = "pn_serve_tenant_requests_total"
	MetricServeTenantShed       = "pn_serve_tenant_shed_total"
	MetricServeAgedPromotions   = "pn_serve_aged_promotions_total"
	MetricServeLimitValue       = "pn_serve_limit_value"
	MetricServeLimitOutstanding = "pn_serve_limit_outstanding"
	MetricServeLimitEvents      = "pn_serve_limit_events_total"
	MetricServeBreakerEvents    = "pn_serve_breaker_events_total"
)

// Live-observability metric names: the per-stage request latency
// breakdown (histograms labelled by stage via these explicit family
// names), the /watch event bus health, and process identity.
const (
	MetricServeStageQueueWait   = "pn_serve_stage_queue_wait_ms"
	MetricServeStageCacheLookup = "pn_serve_stage_cache_lookup_ms"
	MetricServeStageCacheFill   = "pn_serve_stage_cache_fill_ms"
	MetricServeStageClone       = "pn_serve_stage_clone_ms"
	MetricServeStageExecute     = "pn_serve_stage_execute_ms"
	MetricServeStageShadowCheck = "pn_serve_stage_shadow_check_ms"

	MetricBuildInfo        = "pn_build_info"
	MetricServeUptime      = "pn_serve_uptime_seconds"
	MetricWatchSubscribers = "pn_serve_watch_subscribers"
	MetricWatchDropped     = "pn_serve_watch_dropped_events_total"
)

// Cluster-tier metric names (emitted by internal/cluster's router and
// membership and exposed by the router's /metrics endpoint).
const (
	MetricClusterRingNodes      = "pn_cluster_ring_nodes"
	MetricClusterMembers        = "pn_cluster_members"
	MetricClusterForwards       = "pn_cluster_forwards_total"
	MetricClusterForwardRetries = "pn_cluster_forward_retries_total"
	MetricClusterForwardLatency = "pn_cluster_forward_latency_ms"
	MetricClusterRebalances     = "pn_cluster_rebalances_total"
	MetricClusterCoalesced      = "pn_cluster_coalesced_total"
	MetricClusterShed           = "pn_cluster_shed_total"
)

// Label is one metric dimension.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricType distinguishes the exposition families.
type MetricType int

// Metric types.
const (
	TypeCounter MetricType = iota + 1
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// DefaultBuckets are the histogram upper bounds used when none are
// declared: power-of-two byte sizes, matching access granularities.
var DefaultBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096}

type series struct {
	labels []Label // sorted by key
	value  float64 // counter/gauge
	// histogram state
	bucketN []uint64 // per-bound counts (non-cumulative)
	sum     float64
	count   uint64
}

type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []float64
	series  map[string]*series
	order   []string // insertion order of signatures; sorted at render
}

// Registry is a deterministic metrics registry: counters, gauges, and
// fixed-bucket histograms keyed by name and label set. Families are
// created on first use (with the type implied by the operation);
// Describe attaches HELP text and histogram buckets up front. All
// methods are nil-safe and safe for concurrent use; every rendering is
// fully sorted, so equal contents render to equal bytes.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// Describe declares a family's help text and type before first use.
// For histograms, buckets are the upper bounds (ascending); nil selects
// DefaultBuckets. Describing an existing family only updates its help.
func (r *Registry) Describe(name, help string, typ MetricType, buckets ...float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, typ)
	f.help = help
	if typ == TypeHistogram && len(buckets) > 0 {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
}

func (r *Registry) family(name string, typ MetricType) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, typ: typ, series: make(map[string]*series)}
		if typ == TypeHistogram {
			f.buckets = DefaultBuckets
		}
		r.families[name] = f
	}
	return f
}

func signature(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(0)
	}
	return sb.String()
}

func (f *family) at(labels []Label) *series {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	sig := signature(ls)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: ls}
		if f.typ == TypeHistogram {
			s.bucketN = make([]uint64, len(f.buckets))
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
	}
	return s
}

// Inc adds 1 to a counter.
func (r *Registry) Inc(name string, labels ...Label) { r.Add(name, 1, labels...) }

// Add adds v to a counter (negative deltas are ignored, as Prometheus
// counters are monotone).
func (r *Registry) Add(name string, v float64, labels ...Label) {
	if r == nil || v < 0 {
		return
	}
	r.mu.Lock()
	r.family(name, TypeCounter).at(labels).value += v
	r.mu.Unlock()
}

// Set sets a gauge.
func (r *Registry) Set(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.family(name, TypeGauge).at(labels).value = v
	r.mu.Unlock()
}

// Observe records v into a histogram.
func (r *Registry) Observe(name string, v float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := r.family(name, TypeHistogram)
	s := f.at(labels)
	for i, ub := range f.buckets {
		if v <= ub {
			s.bucketN[i]++
			break
		}
	}
	s.sum += v
	s.count++
	r.mu.Unlock()
}

// Value returns the current value of a counter/gauge series (0 if
// absent). For histograms it returns the observation count.
func (r *Registry) Value(name string, labels ...Label) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	s, ok := f.series[signature(ls)]
	if !ok {
		return 0
	}
	if f.typ == TypeHistogram {
		return float64(s.count)
	}
	return s.value
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func renderLabels(ls []Label, extra ...Label) string {
	all := append(append([]Label(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		// Prometheus label-value escaping: backslash, double-quote, and
		// newline. Done by hand — %q would escape the escapes again.
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		parts[i] = l.Key + `="` + v + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Exposition renders the registry in the Prometheus text format,
// deterministically: families sorted by name, series sorted by label
// signature, histogram buckets cumulative with the +Inf bound.
func (r *Registry) Exposition() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, n := range names {
		f := r.families[n]
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			switch f.typ {
			case TypeHistogram:
				var cum uint64
				for i, ub := range f.buckets {
					cum += s.bucketN[i]
					fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
						renderLabels(s.labels, L("le", formatFloat(ub))), cum)
				}
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
					renderLabels(s.labels, L("le", "+Inf")), s.count)
				fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.sum))
				fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.count)
			default:
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.value))
			}
		}
	}
	return sb.String()
}

// MetricPoint is one series in the registry's plain-data snapshot.
type MetricPoint struct {
	Name   string  `json:"name"`
	Type   string  `json:"type"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	// Histogram-only fields.
	Sum     float64   `json:"sum,omitempty"`
	Count   uint64    `json:"count,omitempty"`
	Buckets []float64 `json:"buckets,omitempty"`
	Counts  []uint64  `json:"counts,omitempty"`
}

// Snapshot returns the registry as sorted plain data, for JSON exports
// (pnbench's BENCH_*.json embeds one).
func (r *Registry) Snapshot() []MetricPoint {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []MetricPoint
	for _, n := range names {
		f := r.families[n]
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := f.series[sig]
			p := MetricPoint{Name: f.name, Type: f.typ.String(), Labels: s.labels, Value: s.value}
			if f.typ == TypeHistogram {
				p.Value = float64(s.count)
				p.Sum = s.sum
				p.Count = s.count
				p.Buckets = f.buckets
				p.Counts = s.bucketN
			}
			out = append(out, p)
		}
	}
	return out
}

// Table renders the registry as a report.Table (counters and gauges
// one row per series; histograms one row with count/sum).
func (r *Registry) Table(title string) *report.Table {
	t := report.NewTable(title, "metric", "labels", "value")
	for _, p := range r.Snapshot() {
		var ls []string
		for _, l := range p.Labels {
			ls = append(ls, l.Key+"="+l.Value)
		}
		v := formatFloat(p.Value)
		if p.Type == TypeHistogram.String() {
			v = fmt.Sprintf("count=%d sum=%s", p.Count, formatFloat(p.Sum))
		}
		t.AddRow(p.Name, strings.Join(ls, ","), v)
	}
	return t
}
