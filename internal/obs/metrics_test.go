package obs

import (
	"strings"
	"testing"
)

func TestCounterAndLabels(t *testing.T) {
	r := NewRegistry()
	r.Inc(MetricWrites, L("segment", "stack"))
	r.Inc(MetricWrites, L("segment", "stack"))
	r.Inc(MetricWrites, L("segment", "bss"))
	r.Add(MetricWriteBytes, 16, L("segment", "stack"))
	if got := r.Value(MetricWrites, L("segment", "stack")); got != 2 {
		t.Errorf("stack writes = %g, want 2", got)
	}
	if got := r.Value(MetricWrites, L("segment", "bss")); got != 1 {
		t.Errorf("bss writes = %g, want 1", got)
	}
	if got := r.Value(MetricWrites, L("segment", "heap")); got != 0 {
		t.Errorf("absent series = %g, want 0", got)
	}
	// Negative deltas are ignored: counters are monotone.
	r.Add(MetricWriteBytes, -5, L("segment", "stack"))
	if got := r.Value(MetricWriteBytes, L("segment", "stack")); got != 16 {
		t.Errorf("after negative Add: %g, want 16", got)
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	r.Inc("m", L("a", "1"), L("b", "2"))
	r.Inc("m", L("b", "2"), L("a", "1"))
	if got := r.Value("m", L("b", "2"), L("a", "1")); got != 2 {
		t.Errorf("label order split the series: %g, want 2", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	r.Describe("pn_depth", "current depth", TypeGauge)
	r.Set("pn_depth", 3)
	r.Set("pn_depth", 1)
	if got := r.Value("pn_depth"); got != 1 {
		t.Errorf("gauge = %g, want 1 (last set wins)", got)
	}
	if !strings.Contains(r.Exposition(), "# TYPE pn_depth gauge") {
		t.Error("gauge TYPE line missing")
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("h", "sizes", TypeHistogram, 1, 4, 16)
	for _, v := range []float64{1, 2, 4, 8, 100} {
		r.Observe("h", v)
	}
	exp := r.Exposition()
	want := []string{
		"# HELP h sizes",
		"# TYPE h histogram",
		`h_bucket{le="1"} 1`,
		`h_bucket{le="4"} 3`,  // cumulative: 1 + (2,4)
		`h_bucket{le="16"} 4`, // + 8
		`h_bucket{le="+Inf"} 5`,
		"h_sum 115",
		"h_count 5",
	}
	for _, w := range want {
		if !strings.Contains(exp, w) {
			t.Errorf("exposition missing %q:\n%s", w, exp)
		}
	}
	if got := r.Value("h"); got != 5 {
		t.Errorf("histogram Value = %g, want count 5", got)
	}
}

func TestExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		r.Describe(MetricWrites, "w", TypeCounter)
		for _, seg := range order {
			r.Inc(MetricWrites, L("segment", seg))
		}
		r.Inc(MetricReads, L("segment", "stack"))
		return r.Exposition()
	}
	a := build([]string{"stack", "bss", "heap"})
	b := build([]string{"heap", "stack", "bss"})
	if a != b {
		t.Errorf("exposition depends on insertion order:\n%s\n--- vs ---\n%s", a, b)
	}
	if !strings.HasPrefix(a, "# HELP") && !strings.HasPrefix(a, "# TYPE") {
		t.Errorf("unexpected prefix: %q", a[:20])
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Inc("m", L("k", "a\"b\\c\nd"))
	exp := r.Exposition()
	if !strings.Contains(exp, `m{k="a\"b\\c\nd"} 1`) {
		t.Errorf("label not escaped:\n%s", exp)
	}
}

func TestSnapshotShape(t *testing.T) {
	r := NewRegistry()
	r.Describe("h", "sizes", TypeHistogram, 2, 8)
	r.Observe("h", 1)
	r.Observe("h", 4)
	r.Inc("c", L("x", "1"))
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points, want 2", len(snap))
	}
	// Sorted by family name: c before h.
	if snap[0].Name != "c" || snap[1].Name != "h" {
		t.Fatalf("order = %s, %s", snap[0].Name, snap[1].Name)
	}
	h := snap[1]
	if h.Count != 2 || h.Sum != 5 || len(h.Buckets) != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("histogram point = %+v", h)
	}
}

func TestRegistryTable(t *testing.T) {
	r := NewRegistry()
	r.Inc(MetricProcesses)
	r.Observe(MetricAccessSize, 8, L("op", "write"))
	tb := r.Table("Metrics")
	s := tb.String()
	for _, w := range []string{"pn_processes_total", "pn_mem_access_size_bytes", "count=1 sum=8"} {
		if !strings.Contains(s, w) {
			t.Errorf("table missing %q:\n%s", w, s)
		}
	}
}
