// Package obs is the observability layer: a span-based tracer on a
// deterministic logical clock, a Prometheus-style metrics registry, and
// address-space write-density heatmaps, all fed through passive seams
// in the substrates — mem's AccessObserver, machine's process/event
// observers, chaos's OnInject callback, and resilience's supervision
// Observer. A Collector bundles the three and exports Chrome
// trace_event JSON, Prometheus text exposition, NDJSON event streams,
// and ASCII/JSON heatmaps (cmd/pntrace is the CLI face).
//
// Two properties are load-bearing:
//
//   - Determinism. The clock is logical (it ticks on observed accesses
//     and trace operations, never on wall time), every rendering sorts
//     its keys, and observation never perturbs the observed run — the
//     chaos RNG is not consulted on obs's behalf. Same seed ⇒
//     byte-identical trace, metrics, and heatmap, the same contract
//     pnchaos already makes.
//
//   - Zero cost when disabled. Every seam is a single nil check when no
//     collector is attached; the placement-new hot path does not slow
//     down (see BenchmarkWriteObserver*).
package obs

import (
	"fmt"
	"sync"
)

// Span categories used by the built-in instrumentation.
const (
	CatExperiment = "experiment"
	CatScenario   = "scenario"
	CatRetry      = "retry"
	CatChaos      = "chaos"
	CatMachine    = "machine"
	CatProcess    = "process"
	// CatServe marks spans reconstructed from a serving-tier /watch
	// stream (pntrace -follow).
	CatServe = "serve"
)

// Tick is a timestamp on the deterministic logical clock. The clock
// advances by one on every observed memory access and every trace
// operation, so span durations measure work (accesses observed during
// the span), not wall time.
type Tick uint64

// Attr is one structured span/event attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// A builds an attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer-valued attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// AHex builds a hex-address attribute (the repo-wide %#x convention).
func AHex(key string, v uint64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%#x", v)} }

// Span is one timed region of the run: an experiment, a scenario under
// one defense, a supervised retry attempt, a chaos injection window.
// Spans nest by ID; Parent is zero for roots.
type Span struct {
	ID       int    `json:"id"`
	Parent   int    `json:"parent,omitempty"`
	Category string `json:"cat"`
	Name     string `json:"name"`
	Start    Tick   `json:"start"`
	// End is zero while the span is open; Tracer finishes open spans on
	// Finish so exports never see a zero End.
	End   Tick   `json:"end"`
	Attrs []Attr `json:"attrs,omitempty"`

	tracer *Tracer
}

// PointEvent is an instantaneous trace event (a machine event, a chaos
// injection) attributed to the innermost open span at record time.
type PointEvent struct {
	Time     Tick   `json:"ts"`
	Span     int    `json:"span,omitempty"`
	Category string `json:"cat"`
	Name     string `json:"name"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Tracer records spans and point events on a logical clock. All methods
// are safe on a nil receiver (they do nothing and return nil), which is
// how instrumented code stays zero-cost when tracing is off, and safe
// for concurrent use (supervised attempts run on their own goroutines).
type Tracer struct {
	mu     sync.Mutex
	now    Tick
	nextID int
	spans  []*Span
	events []PointEvent
	stack  []*Span // innermost-open-span stack, for parenting
}

// NewTracer builds an empty tracer with the clock at zero.
func NewTracer() *Tracer { return &Tracer{} }

// Tick advances the logical clock by one and returns the new time.
func (t *Tracer) Tick() Tick {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	t.now++
	v := t.now
	t.mu.Unlock()
	return v
}

// Now returns the current logical time without advancing it.
func (t *Tracer) Now() Tick {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now
}

// Start opens a span nested under the innermost open span. It advances
// the clock. End the span with (*Span).Close; spans still open at
// Finish are ended then.
func (t *Tracer) Start(category, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.now++
	t.nextID++
	s := &Span{
		ID:       t.nextID,
		Category: category,
		Name:     name,
		Start:    t.now,
		Attrs:    attrs,
		tracer:   t,
	}
	if n := len(t.stack); n > 0 {
		s.Parent = t.stack[n-1].ID
	}
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// Close ends the span at the current clock (after advancing it). Safe
// on a nil span and idempotent: only the first Close sticks. Closing a
// span also ends any still-open spans nested inside it, so a panic
// that unwinds past inner spans cannot leave the stack corrupted.
func (s *Span) Close() {
	if s == nil || s.tracer == nil {
		return
	}
	t := s.tracer
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.End != 0 {
		return
	}
	t.now++
	// Pop through the stack to this span, ending anything nested.
	for i := len(t.stack) - 1; i >= 0; i-- {
		open := t.stack[i]
		if open.End == 0 {
			open.End = t.now
		}
		if open == s {
			t.stack = t.stack[:i]
			return
		}
	}
	// Span was not on the stack (already popped by an ancestor's Close);
	// its End time was still set above if unset.
}

// SetAttr appends an attribute to an open or closed span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.tracer.mu.Unlock()
}

// Event records an instantaneous event at the current clock (after
// advancing it), attributed to the innermost open span.
func (t *Tracer) Event(category, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now++
	e := PointEvent{Time: t.now, Category: category, Name: name, Attrs: attrs}
	if n := len(t.stack); n > 0 {
		e.Span = t.stack[n-1].ID
	}
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Finish ends every still-open span (outermost last) and returns the
// final clock value. Exports call it so no span escapes with End == 0.
func (t *Tracer) Finish() Tick {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i].End == 0 {
			t.now++
			t.stack[i].End = t.now
		}
	}
	t.stack = t.stack[:0]
	return t.now
}

// Spans returns all recorded spans in start order. The slice is a copy;
// the spans are shared — callers must not mutate them.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Events returns all recorded point events in record order.
func (t *Tracer) Events() []PointEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PointEvent, len(t.events))
	copy(out, t.events)
	return out
}
