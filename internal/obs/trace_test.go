package obs

import (
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start(CatExperiment, "E1")
	inner := tr.Start(CatScenario, "stack-ret")
	if inner.Parent != outer.ID {
		t.Errorf("inner.Parent = %d, want %d", inner.Parent, outer.ID)
	}
	tr.Event(CatMachine, "hijack")
	inner.Close()
	sibling := tr.Start(CatScenario, "heap-vptr")
	if sibling.Parent != outer.ID {
		t.Errorf("sibling.Parent = %d, want %d (inner closed)", sibling.Parent, outer.ID)
	}
	sibling.Close()
	outer.Close()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, s := range spans {
		if s.End == 0 || s.End <= s.Start {
			t.Errorf("span %q has times [%d,%d]", s.Name, s.Start, s.End)
		}
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Span != inner.ID {
		t.Errorf("event attribution = %+v, want span %d", evs, inner.ID)
	}
}

func TestClockMonotonic(t *testing.T) {
	tr := NewTracer()
	var last Tick
	step := func(v Tick, what string) {
		if v <= last {
			t.Errorf("%s: clock went %d -> %d", what, last, v)
		}
		last = v
	}
	s := tr.Start(CatExperiment, "x")
	step(tr.Now(), "start")
	step(tr.Tick(), "tick")
	tr.Event(CatMachine, "e")
	step(tr.Now(), "event")
	s.Close()
	step(tr.Now(), "close")
}

func TestCloseIdempotentAndCascading(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start(CatExperiment, "outer")
	inner := tr.Start(CatScenario, "inner")
	outer.Close() // ends inner too
	if inner.End == 0 {
		t.Error("closing outer did not end nested inner span")
	}
	end := outer.End
	outer.Close() // no-op
	inner.Close() // no-op
	if outer.End != end {
		t.Errorf("second Close moved End %d -> %d", end, outer.End)
	}
	// The stack is empty again: a new span is a root.
	if s := tr.Start(CatExperiment, "next"); s.Parent != 0 {
		t.Errorf("post-close span has parent %d, want root", s.Parent)
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := NewTracer()
	a := tr.Start(CatExperiment, "a")
	b := tr.Start(CatScenario, "b")
	end := tr.Finish()
	if a.End == 0 || b.End == 0 {
		t.Error("Finish left spans open")
	}
	if got := tr.Finish(); got != end {
		t.Errorf("second Finish moved the clock %d -> %d", end, got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Tick()
	tr.Now()
	tr.Event(CatMachine, "e")
	s := tr.Start(CatExperiment, "x")
	if s != nil {
		t.Fatalf("nil tracer returned span %+v", s)
	}
	s.Close()
	s.SetAttr("k", "v")
	tr.Finish()
	if tr.Spans() != nil || tr.Events() != nil {
		t.Error("nil tracer returned non-nil slices")
	}

	var r *Registry
	r.Inc(MetricWrites)
	r.Add(MetricWriteBytes, 4)
	r.Set("g", 1)
	r.Observe(MetricAccessSize, 8)
	if r.Value(MetricWrites) != 0 || r.Exposition() != "" || r.Snapshot() != nil {
		t.Error("nil registry leaked state")
	}

	var h *Heatmap
	h.RecordWrite(0x1000, 4)
	h.SetSegments(nil)
	h.AddRegion("x", 0x1000, 4)
	if h.WrittenBytes() != 0 {
		t.Error("nil heatmap counted bytes")
	}
	h.Render()

	var c *Collector
	c.ObserveProcess(nil)
	c.AttemptStarted("job", 1)
	c.JobFinished(nil)
	c.Finalize()
	if c.ChaosHook() != nil {
		t.Error("nil collector returned a chaos hook")
	}
	c.Install()()
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	root := tr.Start(CatExperiment, "root")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Tick()
				tr.Event(CatMachine, "e")
			}
		}()
	}
	wg.Wait()
	root.Close()
	if got := len(tr.Events()); got != 800 {
		t.Errorf("recorded %d events, want 800", got)
	}
}
