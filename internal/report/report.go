// Package report renders experiment results as aligned ASCII tables and
// GitHub-flavoured Markdown tables; the pnbench harness uses it to emit
// the rows recorded in EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is an ordered grid with a header row.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func (t *Table) widths() []int {
	w := make([]int, len(t.headers))
	for i, h := range t.headers {
		w[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// String renders an aligned ASCII table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// CSV renders an RFC-4180-style CSV rendering (header row first, title
// omitted). Cells containing commas, quotes, or newlines are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// TableData is the table's deterministic plain-data form, used where a
// table must travel inside machine-readable output (the pnchaos JSON
// report embeds its degraded partial table this way).
type TableData struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Data returns a deep copy of the table as plain data.
func (t *Table) Data() TableData {
	d := TableData{Title: t.Title, Headers: append([]string(nil), t.headers...)}
	d.Rows = make([][]string, len(t.rows))
	for i, r := range t.rows {
		d.Rows[i] = append([]string(nil), r...)
	}
	return d
}

// mdEscape makes a cell safe inside a GitHub-flavoured Markdown table
// row: pipes would otherwise split the cell and newlines would end the
// row, so `|` becomes `\|` and line breaks become `<br>`.
func mdEscape(c string) string {
	c = strings.ReplaceAll(c, "|", `\|`)
	c = strings.ReplaceAll(c, "\r\n", "<br>")
	c = strings.ReplaceAll(c, "\n", "<br>")
	c = strings.ReplaceAll(c, "\r", "<br>")
	return c
}

// Markdown renders a GitHub-flavoured Markdown table. Cells (and
// headers) containing pipes or newlines are escaped so they cannot
// break the table grid.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.Title)
	}
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = mdEscape(c)
		}
		return out
	}
	sb.WriteString("| " + strings.Join(esc(t.headers), " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, r := range t.rows {
		sb.WriteString("| " + strings.Join(esc(r), " | ") + " |\n")
	}
	return sb.String()
}
