package report

import (
	"strings"
	"testing"
)

func TestStringAlignment(t *testing.T) {
	tb := NewTable("Results", "scenario", "status")
	tb.AddRow("stack-ret", "SUCCESS")
	tb.AddRow("x", "prevented")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if lines[0] != "Results" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "scenario") {
		t.Errorf("header = %q", lines[1])
	}
	// Columns align: "status" starts at the same offset everywhere.
	off := strings.Index(lines[1], "status")
	if off < 0 || !strings.HasPrefix(lines[3][off:], "SUCCESS") {
		t.Errorf("misaligned columns:\n%s", s)
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator = %q", lines[2])
	}
}

func TestRowPaddingAndTruncation(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only")
	tb.AddRow("x", "y", "extra")
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	s := tb.String()
	if strings.Contains(s, "extra") {
		t.Error("overflow cell not truncated")
	}
	if strings.HasPrefix(s, "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored title", "a", "b")
	tb.AddRow("plain", `has,comma`)
	tb.AddRow(`has"quote`, "line\nbreak")
	got := tb.CSV()
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",\"line\nbreak\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	if strings.Contains(got, "ignored title") {
		t.Error("CSV included the title")
	}
}

func TestMarkdown(t *testing.T) {
	tb := NewTable("Matrix", "scenario", "none", "checked")
	tb.AddRow("stack-ret", "SUCCESS", "prevented")
	md := tb.Markdown()
	want := []string{
		"**Matrix**",
		"| scenario | none | checked |",
		"|---|---|---|",
		"| stack-ret | SUCCESS | prevented |",
	}
	for _, w := range want {
		if !strings.Contains(md, w) {
			t.Errorf("markdown missing %q:\n%s", w, md)
		}
	}
}

func TestMarkdownEscaping(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"pipe", "a|b", `a\|b`},
		{"double pipe", "||", `\|\|`},
		{"newline", "line\nbreak", "line<br>break"},
		{"crlf", "line\r\nbreak", "line<br>break"},
		{"bare cr", "line\rbreak", "line<br>break"},
		{"mixed", "x|y\nz", `x\|y<br>z`},
		{"clean", "plain", "plain"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := mdEscape(tc.in); got != tc.want {
				t.Errorf("mdEscape(%q) = %q, want %q", tc.in, got, tc.want)
			}
			tb := NewTable("", "h")
			tb.AddRow(tc.in)
			md := tb.Markdown()
			if !strings.Contains(md, "| "+tc.want+" |") {
				t.Errorf("Markdown row for %q = %q, want cell %q", tc.in, md, tc.want)
			}
			// The rendered table must keep its grid shape: every line has
			// exactly the header's pipe count.
			for _, line := range strings.Split(strings.TrimSuffix(md, "\n"), "\n") {
				if n := strings.Count(strings.ReplaceAll(line, `\|`, ""), "|"); n != 2 {
					t.Errorf("line %q has %d unescaped pipes, want 2", line, n)
				}
			}
		})
	}
}

func TestMarkdownEscapesHeaders(t *testing.T) {
	tb := NewTable("", "col|umn", "two\nlines")
	tb.AddRow("x", "y")
	md := tb.Markdown()
	if !strings.Contains(md, `col\|umn`) || !strings.Contains(md, "two<br>lines") {
		t.Errorf("headers not escaped:\n%s", md)
	}
}
