package resilience

import (
	"sync"
	"time"
)

// Breaker is a consecutive-failure circuit breaker, extracted from the
// Supervisor's crash-loop logic so other layers (the serving tier's
// per-tenant scenario breakers) can reuse the same policy. It counts
// consecutive failures; at Threshold it opens and Allow refuses work.
// With a Cooldown it becomes a half-open breaker: once the cooldown
// has elapsed a single probe is allowed through, and its outcome either
// closes the breaker (success) or re-opens it for another cooldown
// (failure). With Cooldown zero the breaker stays open until an
// external Success — the Supervisor's historical behavior.
//
// All methods are safe for concurrent use. The clock is injectable so
// cooldown behavior is byte-reproducible under a virtual clock; a nil
// now falls back to time.Now.
type Breaker struct {
	mu          sync.Mutex
	threshold   int
	cooldown    time.Duration
	now         func() time.Time
	consecutive int
	open        bool
	openedAt    time.Time
	probing     bool
}

// NewBreaker builds a breaker. threshold <= 0 disables it (Allow always
// true). cooldown 0 means an opened breaker only closes on Success.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a unit of work may proceed. While open it
// refuses, except that once the cooldown has elapsed it admits exactly
// one probe at a time; the probe's Success/Failure decides what happens
// next.
func (b *Breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing {
		return false
	}
	if b.cooldown > 0 && b.now().Sub(b.openedAt) >= b.cooldown {
		b.probing = true
		return true
	}
	return false
}

// Success records a successful unit of work: the failure streak resets
// and the breaker closes.
func (b *Breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.open = false
	b.probing = false
}

// Failure records a failed unit of work. At the threshold the breaker
// opens; a failed half-open probe re-opens it for a fresh cooldown.
func (b *Breaker) Failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.probing || (!b.open && b.consecutive >= b.threshold) {
		b.open = true
		b.probing = false
		b.openedAt = b.now()
	}
}

// Open reports whether the breaker currently refuses ordinary work.
func (b *Breaker) Open() bool {
	if b == nil || b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Consecutive returns the current failure streak.
func (b *Breaker) Consecutive() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive
}

// RemainingCooldown returns how long until an open breaker admits its
// next probe (0 when closed, probing, or cooldown-less).
func (b *Breaker) RemainingCooldown() time.Duration {
	if b == nil || b.threshold <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open || b.cooldown <= 0 || b.probing {
		return 0
	}
	rem := b.cooldown - b.now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}
