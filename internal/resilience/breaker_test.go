package resilience

import (
	"context"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for breaker cooldown tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(0, 0)} }

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(0, time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Failure()
	}
	if !b.Allow() || b.Open() {
		t.Fatal("threshold 0 must disable the breaker")
	}
}

func TestBreakerOpensAtThresholdAndClosesOnSuccess(t *testing.T) {
	b := NewBreaker(3, 0, nil)
	b.Failure()
	b.Failure()
	if b.Open() || !b.Allow() {
		t.Fatalf("breaker open after 2/3 failures")
	}
	b.Failure()
	if !b.Open() || b.Allow() {
		t.Fatal("breaker not open after 3 consecutive failures")
	}
	if got := b.Consecutive(); got != 3 {
		t.Fatalf("consecutive = %d, want 3", got)
	}
	// Cooldown 0: stays open until an external success.
	if b.Allow() {
		t.Fatal("cooldown-less breaker admitted work while open")
	}
	b.Success()
	if b.Open() || !b.Allow() || b.Consecutive() != 0 {
		t.Fatal("success must close the breaker and reset the streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(2, 5*time.Second, clk.now)
	b.Failure()
	b.Failure()
	if !b.Open() {
		t.Fatal("breaker not open at threshold")
	}
	if b.Allow() {
		t.Fatal("breaker admitted work before the cooldown elapsed")
	}
	if rem := b.RemainingCooldown(); rem != 5*time.Second {
		t.Fatalf("remaining cooldown = %s, want 5s", rem)
	}
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	// Failed probe: re-opens for a fresh cooldown.
	b.Failure()
	if !b.Open() || b.Allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	clk.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe after the fresh cooldown")
	}
	// Successful probe closes it.
	b.Success()
	if b.Open() || !b.Allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

// TestSupervisorBreakerUnchanged pins the Supervisor's crash-loop
// behavior across the Breaker extraction: open after N consecutive
// dead jobs, skip while open, stay open until an external success.
func TestSupervisorBreakerUnchanged(t *testing.T) {
	s := NewSupervisor(Policy{MaxAttempts: 1, BreakerThreshold: 2})
	fail := func(id string) Job {
		return Job{ID: id, Run: func(ctx context.Context, attempt int) (any, error) {
			panic("boom")
		}}
	}
	if r := s.Run(fail("a")); r.Status != StatusFailed {
		t.Fatalf("job a status = %s, want failed", r.Status)
	}
	if s.BreakerOpen() {
		t.Fatal("breaker open after one dead job, threshold 2")
	}
	if r := s.Run(fail("b")); r.Status != StatusFailed {
		t.Fatalf("job b status = %s, want failed", r.Status)
	}
	if !s.BreakerOpen() {
		t.Fatal("breaker not open after two consecutive dead jobs")
	}
	r := s.Run(Job{ID: "c", Run: func(ctx context.Context, attempt int) (any, error) {
		return 1, nil
	}})
	if r.Status != StatusSkipped {
		t.Fatalf("job c status = %s, want breaker-skipped", r.Status)
	}
	if r.Err == "" {
		t.Fatal("skipped job must explain the open breaker")
	}
}
