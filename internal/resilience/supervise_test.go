package resilience

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestSuperviseConcurrent: Supervise shares no state between calls, so
// many goroutines may supervise jobs at once — the property the
// serving layer's per-request supervision depends on. Run under -race
// this is its regression gate.
func TestSuperviseConcurrent(t *testing.T) {
	const n = 32
	var wg sync.WaitGroup
	results := make([]*Result, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			crash := i%2 == 1
			results[i] = Supervise(Job{
				ID: fmt.Sprintf("job-%d", i),
				Run: func(ctx context.Context, attempt int) (any, error) {
					if crash {
						panic(fmt.Sprintf("crash-%d", i))
					}
					return i, nil
				},
			}, Policy{MaxAttempts: 1})
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if i%2 == 1 {
			if res.Status != StatusFailed || len(res.Crashes) != 1 || res.Crashes[0].Kind != CrashPanic {
				t.Fatalf("job %d = %+v, want one panic crash", i, res)
			}
			if want := fmt.Sprintf("crash-%d", i); res.Crashes[0].Message != want {
				t.Fatalf("job %d crash message %q, want %q (cross-call state leak?)", i, res.Crashes[0].Message, want)
			}
			continue
		}
		if res.Status != StatusOK || res.Value != i {
			t.Fatalf("job %d = %+v, want ok with value %d", i, res, i)
		}
	}
}

// TestSuperviseHonoursPolicy: the one-shot wrapper applies the same
// policy semantics as a Supervisor (here: bounded retry).
func TestSuperviseHonoursPolicy(t *testing.T) {
	attempts := 0
	res := Supervise(Job{
		ID: "retry",
		Run: func(ctx context.Context, attempt int) (any, error) {
			attempts++
			if attempts < 3 {
				return nil, fmt.Errorf("transient %d", attempts)
			}
			return "done", nil
		},
	}, Policy{MaxAttempts: 3})
	if res.Status != StatusOK || res.Value != "done" || attempts != 3 {
		t.Fatalf("res = %+v after %d attempts, want ok/done/3", res, attempts)
	}
}
