// Package resilience runs attack/defense scenarios as supervised,
// restartable, deadline-bounded jobs — the process-manager layer the
// chaos campaign needs so a simulated SIGSEGV (an escaped *mem.Fault
// panic) becomes a structured crash record instead of taking the whole
// harness down, mirroring how the paper's victim processes die and dump
// core while the testbed carries on.
//
// A Supervisor provides, per job: panic recovery, a per-attempt
// deadline, bounded retry with exponential backoff, and a crash-loop
// breaker that stops launching work after too many consecutive dead
// jobs. When some jobs die anyway, PartialTable degrades gracefully to
// a report.Table of what survived and what did not.
package resilience

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/mem"
	"repro/internal/report"
)

// Status is a job's final supervised state.
type Status string

// Job states.
const (
	// StatusOK: some attempt returned a value.
	StatusOK Status = "ok"
	// StatusFailed: every attempt crashed (panic or error).
	StatusFailed Status = "failed"
	// StatusTimeout: the final attempt exceeded its deadline.
	StatusTimeout Status = "timeout"
	// StatusSkipped: the crash-loop breaker was open; never launched.
	StatusSkipped Status = "breaker-skipped"
)

// Crash kinds recorded in CrashRecord.Kind.
const (
	CrashPanic   = "panic"
	CrashError   = "error"
	CrashTimeout = "timeout"
)

// CrashRecord is the structured core dump of one failed attempt.
type CrashRecord struct {
	Job     string `json:"job"`
	Attempt int    `json:"attempt"`
	// Kind is "panic", "error", or "timeout".
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// FaultKind/FaultAddr are set when the crash carried a *mem.Fault —
	// the simulated SIGSEGV's siginfo.
	FaultKind string `json:"fault_kind,omitempty"`
	FaultAddr uint64 `json:"fault_addr,omitempty"`
	// Restored and RestoreClean are set by recovery callbacks that roll
	// the crashed process image back to its pre-run checkpoint:
	// Restored means the rollback ran; RestoreClean means the
	// post-restore whole-image diff against the checkpoint was empty.
	Restored     bool `json:"restored,omitempty"`
	RestoreClean bool `json:"restore_clean,omitempty"`
}

// Job is one supervised unit of work.
type Job struct {
	// ID names the job in records and tables.
	ID string
	// Run executes one attempt. ctx is cancelled at the attempt
	// deadline; cooperative jobs may watch it, but the supervisor does
	// not require them to — a wedged attempt is abandoned, not joined.
	Run func(ctx context.Context, attempt int) (any, error)
	// OnCrash, when non-nil, is invoked after each crashed attempt with
	// the crash record, before any retry. Campaigns use it to restore
	// the process image from its checkpoint and annotate the record.
	// It is not called for timeouts: the attempt may still be running,
	// so its state cannot be safely touched.
	OnCrash func(rec *CrashRecord)
}

// Policy tunes the supervisor. The zero value means: no deadline, three
// attempts, no backoff, breaker disabled.
type Policy struct {
	// Timeout is the per-attempt deadline (0 = none).
	Timeout time.Duration
	// MaxAttempts bounds retries; zero selects 3.
	MaxAttempts int
	// Backoff is the delay before the second attempt; each further
	// retry multiplies it by BackoffFactor (default 2) up to MaxBackoff.
	Backoff       time.Duration
	BackoffFactor float64
	MaxBackoff    time.Duration
	// BreakerThreshold opens the crash-loop breaker after this many
	// consecutive dead jobs (0 = disabled). While open, jobs are
	// skipped rather than launched; a successful job closes it again.
	BreakerThreshold int
	// Sleep is the backoff clock, injectable for tests; nil = time.Sleep.
	Sleep func(time.Duration)
	// Observer, when non-nil, receives supervision lifecycle
	// notifications (the observability seam). Notifications are passive
	// and synchronous; implementations must not call back into the
	// supervisor.
	Observer Observer
}

// Observer receives supervision lifecycle notifications: the obs layer
// implements it to turn attempts into retry spans and crashes into
// metrics. All methods are invoked from the supervisor's goroutine, in
// deterministic order for deterministic job sequences.
type Observer interface {
	// AttemptStarted fires before each attempt (attempt is 1-based).
	AttemptStarted(job string, attempt int)
	// AttemptCrashed fires after a crashed attempt, once any OnCrash
	// recovery callback has annotated the record.
	AttemptCrashed(job string, rec CrashRecord)
	// JobFinished fires once per job with its final result, including
	// breaker-skipped jobs that never launched.
	JobFinished(res *Result)
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

func (p Policy) factor() float64 {
	if p.BackoffFactor <= 1 {
		return 2
	}
	return p.BackoffFactor
}

func (p Policy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// BackoffSchedule returns the waits applied before attempts 2..n — the
// exponential schedule the policy implies, exposed for tests and docs.
func (p Policy) BackoffSchedule(n int) []time.Duration {
	var out []time.Duration
	d := p.Backoff
	for i := 2; i <= n; i++ {
		w := d
		if p.MaxBackoff > 0 && w > p.MaxBackoff {
			w = p.MaxBackoff
		}
		out = append(out, w)
		d = time.Duration(float64(d) * p.factor())
	}
	return out
}

// Result is a job's supervised outcome.
type Result struct {
	Job      string        `json:"job"`
	Status   Status        `json:"status"`
	Attempts int           `json:"attempts"`
	Crashes  []CrashRecord `json:"crashes,omitempty"`
	// Err is the final failure message for dead jobs.
	Err string `json:"error,omitempty"`
	// Value is the successful attempt's return value.
	Value any `json:"-"`
}

// Supervisor runs jobs under a Policy. It is meant for sequential use;
// the deterministic-campaign contract depends on jobs running one at a
// time in a fixed order.
type Supervisor struct {
	pol     Policy
	breaker *Breaker // crash-loop breaker over consecutive dead jobs
	results []*Result
}

// NewSupervisor builds a supervisor with the given policy.
func NewSupervisor(pol Policy) *Supervisor {
	// Cooldown 0: the supervisor's crash-loop breaker only closes again
	// when a job succeeds — the historical sequential-campaign contract.
	return &Supervisor{pol: pol, breaker: NewBreaker(pol.BreakerThreshold, 0, nil)}
}

// BreakerOpen reports whether the crash-loop breaker is currently open.
func (s *Supervisor) BreakerOpen() bool { return s.breaker.Open() }

// Results returns every result recorded so far, in run order.
func (s *Supervisor) Results() []*Result {
	out := make([]*Result, len(s.results))
	copy(out, s.results)
	return out
}

// Run executes job under the policy and records its result.
func (s *Supervisor) Run(job Job) *Result {
	res := &Result{Job: job.ID}
	s.results = append(s.results, res)
	if s.BreakerOpen() {
		res.Status = StatusSkipped
		res.Err = fmt.Sprintf("crash-loop breaker open after %d consecutive dead jobs", s.breaker.Consecutive())
		if s.pol.Observer != nil {
			s.pol.Observer.JobFinished(res)
		}
		return res
	}
	backoff := s.pol.Backoff
	max := s.pol.maxAttempts()
	for attempt := 1; attempt <= max; attempt++ {
		res.Attempts = attempt
		if attempt > 1 {
			w := backoff
			if s.pol.MaxBackoff > 0 && w > s.pol.MaxBackoff {
				w = s.pol.MaxBackoff
			}
			s.pol.sleep(w)
			backoff = time.Duration(float64(backoff) * s.pol.factor())
		}
		if s.pol.Observer != nil {
			s.pol.Observer.AttemptStarted(job.ID, attempt)
		}
		val, crash := s.attempt(job, attempt)
		if crash == nil {
			res.Status = StatusOK
			res.Value = val
			s.breaker.Success()
			if s.pol.Observer != nil {
				s.pol.Observer.JobFinished(res)
			}
			return res
		}
		res.Crashes = append(res.Crashes, *crash)
		rec := &res.Crashes[len(res.Crashes)-1]
		if job.OnCrash != nil && rec.Kind != CrashTimeout {
			job.OnCrash(rec)
		}
		if s.pol.Observer != nil {
			s.pol.Observer.AttemptCrashed(job.ID, *rec)
		}
	}
	last := res.Crashes[len(res.Crashes)-1]
	if last.Kind == CrashTimeout {
		res.Status = StatusTimeout
	} else {
		res.Status = StatusFailed
	}
	res.Err = last.Message
	s.breaker.Failure()
	if s.pol.Observer != nil {
		s.pol.Observer.JobFinished(res)
	}
	return res
}

// Supervise executes one job under pol and returns its result. Unlike
// a long-lived Supervisor — whose breaker and result log make it
// strictly sequential — Supervise shares nothing between calls, so it
// is safe to invoke from many goroutines at once. It is the serving
// layer's per-request supervision primitive: each request gets panic
// recovery, a deadline, and a structured crash record without any
// cross-request state.
func Supervise(job Job, pol Policy) *Result {
	return NewSupervisor(pol).Run(job)
}

// RunAll executes jobs in order and returns their results.
func (s *Supervisor) RunAll(jobs []Job) []*Result {
	out := make([]*Result, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.Run(j))
	}
	return out
}

// attempt executes one isolated attempt with panic recovery and a
// deadline. A timed-out attempt is abandoned: its goroutine may still
// be running, but writes only to its own state and to the buffered
// outcome channel nobody reads.
func (s *Supervisor) attempt(job Job, attempt int) (any, *CrashRecord) {
	ctx := context.Background()
	cancel := func() {}
	if s.pol.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.pol.Timeout)
	}
	defer cancel()

	type outcome struct {
		val      any
		err      error
		panicked bool
		pv       any
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{panicked: true, pv: r}
			}
		}()
		v, err := job.Run(ctx, attempt)
		ch <- outcome{val: v, err: err}
	}()

	var done <-chan struct{}
	if s.pol.Timeout > 0 {
		done = ctx.Done()
	}
	select {
	case o := <-ch:
		switch {
		case o.panicked:
			return nil, s.crashFromPanic(job.ID, attempt, o.pv)
		case o.err != nil:
			return nil, s.crashFromError(job.ID, attempt, o.err)
		default:
			return o.val, nil
		}
	case <-done:
		return nil, &CrashRecord{
			Job: job.ID, Attempt: attempt, Kind: CrashTimeout,
			Message: fmt.Sprintf("attempt exceeded deadline %s", s.pol.Timeout),
		}
	}
}

// crashFromPanic turns a recovered panic into a crash record. A panic
// carrying a *mem.Fault — directly or wrapped — is the simulated
// SIGSEGV; its siginfo is preserved in the record.
func (s *Supervisor) crashFromPanic(jobID string, attempt int, pv any) *CrashRecord {
	rec := &CrashRecord{Job: jobID, Attempt: attempt, Kind: CrashPanic, Message: fmt.Sprint(pv)}
	if err, ok := pv.(error); ok {
		annotateFault(rec, err)
	}
	return rec
}

func (s *Supervisor) crashFromError(jobID string, attempt int, err error) *CrashRecord {
	rec := &CrashRecord{Job: jobID, Attempt: attempt, Kind: CrashError, Message: err.Error()}
	annotateFault(rec, err)
	return rec
}

func annotateFault(rec *CrashRecord, err error) {
	if f, ok := mem.IsFault(err); ok {
		rec.FaultKind = f.Kind.String()
		rec.FaultAddr = uint64(f.Addr)
	}
}

// PartialTable renders results as a degraded report: every job gets a
// row whether it lived or died, so a campaign where some cells crash
// irrecoverably still yields the table for the rest.
func PartialTable(title string, results []*Result) *report.Table {
	t := report.NewTable(title, "job", "status", "attempts", "crashes", "last error")
	for _, r := range results {
		t.AddRow(r.Job, string(r.Status), strconv.Itoa(r.Attempts),
			strconv.Itoa(len(r.Crashes)), r.Err)
	}
	return t
}

// CountStatus tallies results by status.
func CountStatus(results []*Result) map[Status]int {
	out := make(map[Status]int)
	for _, r := range results {
		out[r.Status]++
	}
	return out
}
