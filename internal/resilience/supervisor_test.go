package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
)

func TestRunSucceedsFirstAttempt(t *testing.T) {
	s := NewSupervisor(Policy{})
	res := s.Run(Job{ID: "ok", Run: func(ctx context.Context, attempt int) (any, error) {
		return 7, nil
	}})
	if res.Status != StatusOK || res.Attempts != 1 || res.Value.(int) != 7 {
		t.Fatalf("result = %+v", res)
	}
}

func TestPanicWithFaultBecomesCrashRecord(t *testing.T) {
	f := &mem.Fault{Kind: mem.FaultUnmapped, Addr: 0x80a0000, Size: 4}
	s := NewSupervisor(Policy{MaxAttempts: 2})
	recovered := 0
	res := s.Run(Job{
		ID: "segv",
		Run: func(ctx context.Context, attempt int) (any, error) {
			if attempt == 1 {
				panic(f) // the simulated SIGSEGV
			}
			return "recovered", nil
		},
		OnCrash: func(rec *CrashRecord) { recovered++; rec.Restored = true },
	})
	if res.Status != StatusOK || res.Attempts != 2 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Crashes) != 1 {
		t.Fatalf("crashes = %v", res.Crashes)
	}
	c := res.Crashes[0]
	if c.Kind != CrashPanic || c.FaultKind != "unmapped" || c.FaultAddr != 0x80a0000 {
		t.Fatalf("crash record = %+v, want structured SIGSEGV siginfo", c)
	}
	if recovered != 1 || !c.Restored {
		t.Fatalf("OnCrash not invoked or annotation lost: %+v", c)
	}
}

func TestErrorWrappingFaultIsAnnotated(t *testing.T) {
	f := &mem.Fault{Kind: mem.FaultPerm, Addr: 0x1234, Size: 1, Want: mem.PermWrite}
	s := NewSupervisor(Policy{MaxAttempts: 1})
	res := s.Run(Job{ID: "werr", Run: func(ctx context.Context, attempt int) (any, error) {
		return nil, fmt.Errorf("scenario: %w", errors.Join(errors.New("noise"), f))
	}})
	if res.Status != StatusFailed {
		t.Fatalf("status = %s", res.Status)
	}
	if res.Crashes[0].FaultKind != "permission" {
		t.Fatalf("fault not extracted through join: %+v", res.Crashes[0])
	}
}

func TestBoundedRetryExhausts(t *testing.T) {
	s := NewSupervisor(Policy{MaxAttempts: 3})
	runs := 0
	res := s.Run(Job{ID: "dead", Run: func(ctx context.Context, attempt int) (any, error) {
		runs++
		return nil, errors.New("always broken")
	}})
	if res.Status != StatusFailed || res.Attempts != 3 || runs != 3 {
		t.Fatalf("result = %+v after %d runs", res, runs)
	}
	if res.Err != "always broken" {
		t.Fatalf("final error = %q", res.Err)
	}
}

func TestExponentialBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	pol := Policy{
		MaxAttempts: 4,
		Backoff:     10 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	s := NewSupervisor(pol)
	s.Run(Job{ID: "backoff", Run: func(ctx context.Context, attempt int) (any, error) {
		return nil, errors.New("no")
	}})
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
	// The schedule helper agrees with what the supervisor actually did.
	sched := pol.BackoffSchedule(4)
	for i := range want {
		if sched[i] != want[i] {
			t.Fatalf("BackoffSchedule = %v, want %v", sched, want)
		}
	}
}

func TestDeadlineTimesOutWedgedJob(t *testing.T) {
	s := NewSupervisor(Policy{Timeout: 30 * time.Millisecond, MaxAttempts: 1})
	release := make(chan struct{})
	defer close(release)
	onCrashCalls := 0
	start := time.Now()
	res := s.Run(Job{
		ID: "wedged",
		Run: func(ctx context.Context, attempt int) (any, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return nil, ctx.Err()
		},
		OnCrash: func(rec *CrashRecord) { onCrashCalls++ },
	})
	if res.Status != StatusTimeout {
		t.Fatalf("status = %s", res.Status)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("supervisor hung %v on a wedged job", elapsed)
	}
	if onCrashCalls != 0 {
		t.Fatal("OnCrash ran for a timeout — the attempt may still own its state")
	}
}

func TestCrashLoopBreaker(t *testing.T) {
	s := NewSupervisor(Policy{MaxAttempts: 1, BreakerThreshold: 2})
	die := Job{ID: "d", Run: func(ctx context.Context, attempt int) (any, error) {
		return nil, errors.New("boom")
	}}
	s.Run(die)
	s.Run(die)
	if !s.BreakerOpen() {
		t.Fatal("breaker closed after threshold consecutive dead jobs")
	}
	launched := false
	res := s.Run(Job{ID: "skipped", Run: func(ctx context.Context, attempt int) (any, error) {
		launched = true
		return nil, nil
	}})
	if res.Status != StatusSkipped || launched {
		t.Fatalf("breaker did not skip: %+v launched=%v", res, launched)
	}
	if got := CountStatus(s.Results()); got[StatusFailed] != 2 || got[StatusSkipped] != 1 {
		t.Fatalf("status counts = %v", got)
	}
}

func TestBreakerClosesOnSuccess(t *testing.T) {
	s := NewSupervisor(Policy{MaxAttempts: 1, BreakerThreshold: 3})
	die := Job{ID: "d", Run: func(ctx context.Context, attempt int) (any, error) {
		return nil, errors.New("boom")
	}}
	ok := Job{ID: "ok", Run: func(ctx context.Context, attempt int) (any, error) { return 1, nil }}
	s.Run(die)
	s.Run(die)
	s.Run(ok) // resets the consecutive counter
	s.Run(die)
	s.Run(die)
	if s.BreakerOpen() {
		t.Fatal("breaker open despite intervening success")
	}
}

func TestPartialTableDegradesGracefully(t *testing.T) {
	s := NewSupervisor(Policy{MaxAttempts: 1, BreakerThreshold: 1})
	results := s.RunAll([]Job{
		{ID: "alive", Run: func(ctx context.Context, attempt int) (any, error) { return 1, nil }},
		{ID: "dead", Run: func(ctx context.Context, attempt int) (any, error) { return nil, errors.New("x") }},
		{ID: "after", Run: func(ctx context.Context, attempt int) (any, error) { return 2, nil }},
	})
	tb := PartialTable("partial", results)
	if tb.NumRows() != 3 {
		t.Fatalf("partial table rows = %d, want every job reported", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"alive", "dead", "after", "breaker-skipped", "ok", "failed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("partial table missing %q:\n%s", want, out)
		}
	}
}
