package serial

import (
	"fmt"
	"math"
	"sort"
)

// Binary wire format — the compact form of the §3.2 remote-object channel
// (little-endian throughout):
//
//	magic   "PN01"
//	class   u8 length, bytes
//	fields  u8 count, then per field:
//	  name  u8 length, bytes
//	  kind  u8 (1 int, 2 float, 3 int-array, 4 string)
//	  int:       8-byte value
//	  float:     8-byte IEEE-754 bits
//	  int-array: u16 count, then count 8-byte values
//	  string:    u16 length, bytes
//
// Every count on the wire is attacker-controlled; the parser bounds every
// read against the buffer, so truncation or inflated counts are rejected
// rather than over-read — the *parser* is robust even though the
// *deserializer* downstream may still place the decoded object unsafely.
const binaryMagic = "PN01"

// Binary field kind codes.
const (
	binKindInt      = 1
	binKindFloat    = 2
	binKindIntArray = 3
	binKindString   = 4
)

// EncodeBinary renders the message in binary wire format with
// deterministic field order.
func EncodeBinary(m *Message) ([]byte, error) {
	if len(m.Class) > 255 {
		return nil, fmt.Errorf("serial: class name too long (%d bytes)", len(m.Class))
	}
	if len(m.Fields) > 255 {
		return nil, fmt.Errorf("serial: too many fields (%d)", len(m.Fields))
	}
	names := make([]string, 0, len(m.Fields))
	for n := range m.Fields {
		names = append(names, n)
	}
	sort.Strings(names)

	out := []byte(binaryMagic)
	out = append(out, byte(len(m.Class)))
	out = append(out, m.Class...)
	out = append(out, byte(len(names)))
	put64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			out = append(out, byte(v>>(8*i)))
		}
	}
	for _, n := range names {
		if len(n) > 255 {
			return nil, fmt.Errorf("serial: field name %q too long", n)
		}
		out = append(out, byte(len(n)))
		out = append(out, n...)
		v := m.Fields[n]
		switch v.Kind {
		case KindInt:
			out = append(out, binKindInt)
			put64(uint64(v.Int))
		case KindFloat:
			out = append(out, binKindFloat)
			put64(math.Float64bits(v.Float))
		case KindIntArray:
			if len(v.Array) > math.MaxUint16 {
				return nil, fmt.Errorf("serial: array field %q too long", n)
			}
			out = append(out, binKindIntArray)
			out = append(out, byte(len(v.Array)), byte(len(v.Array)>>8))
			for _, e := range v.Array {
				put64(uint64(e))
			}
		case KindString:
			if len(v.Str) > math.MaxUint16 {
				return nil, fmt.Errorf("serial: string field %q too long", n)
			}
			out = append(out, binKindString)
			out = append(out, byte(len(v.Str)), byte(len(v.Str)>>8))
			out = append(out, v.Str...)
		default:
			return nil, fmt.Errorf("serial: field %q has unknown kind", n)
		}
	}
	return out, nil
}

// binReader is a bounds-checked cursor over a binary message.
type binReader struct {
	b   []byte
	pos int
}

func (r *binReader) fail(msg string) error {
	return &ParseError{Pos: r.pos, Msg: msg}
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.b) {
		return nil, r.fail(fmt.Sprintf("truncated: need %d bytes, have %d", n, len(r.b)-r.pos))
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *binReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *binReader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return uint16(b[0]) | uint16(b[1])<<8, nil
}

func (r *binReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v, nil
}

// ParseBinary decodes one binary wire message.
func ParseBinary(in []byte) (*Message, error) {
	r := &binReader{b: in}
	magic, err := r.bytes(len(binaryMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, r.fail("bad magic")
	}
	clsLen, err := r.u8()
	if err != nil {
		return nil, err
	}
	cls, err := r.bytes(int(clsLen))
	if err != nil {
		return nil, err
	}
	if len(cls) == 0 {
		return nil, r.fail("empty class name")
	}
	msg := NewMessage(string(cls))
	nFields, err := r.u8()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nFields); i++ {
		nameLen, err := r.u8()
		if err != nil {
			return nil, err
		}
		name, err := r.bytes(int(nameLen))
		if err != nil {
			return nil, err
		}
		if len(name) == 0 {
			return nil, r.fail("empty field name")
		}
		if _, dup := msg.Fields[string(name)]; dup {
			return nil, r.fail(fmt.Sprintf("duplicate field %q", name))
		}
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		switch kind {
		case binKindInt:
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			msg.Set(string(name), IntValue(int64(v)))
		case binKindFloat:
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			msg.Set(string(name), FloatValue(math.Float64frombits(v)))
		case binKindIntArray:
			count, err := r.u16()
			if err != nil {
				return nil, err
			}
			arr := make([]int64, 0, minInt(int(count), (len(r.b)-r.pos)/8))
			for j := 0; j < int(count); j++ {
				v, err := r.u64()
				if err != nil {
					return nil, err // inflated count vs truncated payload
				}
				arr = append(arr, int64(v))
			}
			msg.Set(string(name), ArrayValue(arr...))
		case binKindString:
			slen, err := r.u16()
			if err != nil {
				return nil, err
			}
			s, err := r.bytes(int(slen))
			if err != nil {
				return nil, err
			}
			msg.Set(string(name), StringValue(string(s)))
		default:
			return nil, r.fail(fmt.Sprintf("unknown field kind %d", kind))
		}
	}
	if r.pos != len(in) {
		return nil, r.fail("trailing data")
	}
	return msg, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
