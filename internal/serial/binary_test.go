package serial

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/mem"
)

func TestBinaryRoundTrip(t *testing.T) {
	msg := NewMessage("GradStudent").
		Set("gpa", FloatValue(4.0)).
		Set("year", IntValue(-2009)).
		Set("ssn", ArrayValue(111, 222, 333)).
		Set("note", StringValue("hello \x00 world"))
	wire, err := EncodeBinary(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != "GradStudent" {
		t.Errorf("class = %q", got.Class)
	}
	if v := got.Fields["gpa"]; v.Float != 4.0 {
		t.Errorf("gpa = %v", v)
	}
	if v := got.Fields["year"]; v.Int != -2009 {
		t.Errorf("year = %v", v)
	}
	if v := got.Fields["ssn"]; len(v.Array) != 3 || v.Array[2] != 333 {
		t.Errorf("ssn = %v", v)
	}
	if v := got.Fields["note"]; v.Str != "hello \x00 world" {
		t.Errorf("note = %q", v.Str)
	}
}

func TestBinaryRejectsMalformed(t *testing.T) {
	good, err := EncodeBinary(NewMessage("Student").Set("year", IntValue(1)))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XX01\x01A\x00")},
		{"truncated class", []byte("PN01\x10Stu")},
		{"empty class", []byte("PN01\x00\x00")},
		{"truncated mid-field", good[:len(good)-3]},
		{"trailing data", append(append([]byte{}, good...), 0xff)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseBinary(tt.in); err == nil {
				t.Errorf("ParseBinary accepted %q", tt.in)
			}
		})
	}
}

func TestBinaryInflatedArrayCountRejected(t *testing.T) {
	// An attacker claims 65535 elements but ships three: the parser must
	// reject rather than over-read.
	msg := NewMessage("GradStudent").Set("ssn", ArrayValue(1, 2, 3))
	wire, err := EncodeBinary(msg)
	if err != nil {
		t.Fatal(err)
	}
	// The u16 count sits right after name+kind; find and inflate it.
	idx := strings.Index(string(wire), "ssn") + 3 + 1 // past name and kind byte
	wire[idx] = 0xff
	wire[idx+1] = 0xff
	if _, err := ParseBinary(wire); err == nil {
		t.Error("inflated count accepted")
	}
}

func TestBinaryDuplicateFieldRejected(t *testing.T) {
	// Hand-build a message with the same field twice.
	wire := []byte("PN01")
	wire = append(wire, 1, 'S') // class "S"
	wire = append(wire, 2)      // two fields
	field := append([]byte{1, 'x', binKindInt}, make([]byte, 8)...)
	wire = append(wire, field...)
	wire = append(wire, field...)
	if _, err := ParseBinary(wire); err == nil {
		t.Error("duplicate field accepted")
	}
}

func TestBinaryEncodeLimits(t *testing.T) {
	long := strings.Repeat("x", 300)
	if _, err := EncodeBinary(NewMessage(long)); err == nil {
		t.Error("overlong class accepted")
	}
	if _, err := EncodeBinary(NewMessage("C").Set(long, IntValue(1))); err == nil {
		t.Error("overlong field name accepted")
	}
	big := make([]int64, math.MaxUint16+1)
	if _, err := EncodeBinary(NewMessage("C").Set("a", ArrayValue(big...))); err == nil {
		t.Error("overlong array accepted")
	}
}

// TestBinaryFeedsPlacement: the binary channel drives the same trusting
// deserializer, reproducing the §3.2 overflow end to end in compact form.
func TestBinaryFeedsPlacement(t *testing.T) {
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	wire, err := EncodeBinary(NewMessage("GradStudent").Set("ssn", ArrayValue(0x45454545, 0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ParseBinary(wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg); err != nil {
		t.Fatal(err)
	}
	v, _ := m.ReadU32(0x1110) // one word past the 16-byte Student arena
	if v != 0x45454545 {
		t.Errorf("victim word = %#x", v)
	}
}

// Property: binary encode/parse round-trips int, float, and array fields.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(year int64, gpa float64, ssn []int64, note string) bool {
		if len(ssn) > 20 {
			ssn = ssn[:20]
		}
		if len(note) > 100 {
			note = note[:100]
		}
		if math.IsNaN(gpa) {
			gpa = 0 // NaN != NaN would fail equality below, not a codec issue
		}
		msg := NewMessage("T").
			Set("year", IntValue(year)).
			Set("gpa", FloatValue(gpa)).
			Set("ssn", ArrayValue(ssn...)).
			Set("note", StringValue(note))
		wire, err := EncodeBinary(msg)
		if err != nil {
			return false
		}
		got, err := ParseBinary(wire)
		if err != nil {
			return false
		}
		if got.Fields["year"].Int != year || got.Fields["gpa"].Float != gpa || got.Fields["note"].Str != note {
			return false
		}
		a := got.Fields["ssn"].Array
		if len(a) != len(ssn) {
			return false
		}
		for i := range a {
			if a[i] != ssn[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// FuzzParseBinary checks the binary parser never panics or over-reads.
func FuzzParseBinary(f *testing.F) {
	good, _ := EncodeBinary(NewMessage("GradStudent").
		Set("gpa", FloatValue(4.0)).
		Set("ssn", ArrayValue(1, 2, 3)))
	f.Add(good)
	f.Add([]byte("PN01"))
	f.Add([]byte("PN01\x01A\x01\x01x\x03\xff\xff"))
	f.Fuzz(func(t *testing.T, in []byte) {
		msg, err := ParseBinary(in)
		if err != nil {
			return
		}
		re, err := EncodeBinary(msg)
		if err != nil {
			return // parsed message may exceed encode limits; fine
		}
		if _, err := ParseBinary(re); err != nil {
			t.Fatalf("re-encoded message unparsable: %v", err)
		}
	})
}
