package serial_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/serial"
)

func exampleWorld() (*mem.Memory, *serial.Registry, *layout.Class, error) {
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		return nil, nil, nil, err
	}
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return m, serial.NewRegistry(student, grad), student, nil
}

// The §3.2 trust boundary: the receiving service reserves a Student
// arena, but the wire message decides what actually gets placed there.
func ExamplePlaceTrusting() {
	m, reg, _, err := exampleWorld()
	if err != nil {
		fmt.Println(err)
		return
	}
	msg, err := serial.Parse("GradStudent{gpa=4.0,ssn=[1094795585,0,0]}")
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := serial.PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg); err != nil {
		fmt.Println(err)
		return
	}
	// The word just past the 16-byte Student arena now holds ssn[0].
	v, _ := m.ReadU32(0x1110)
	fmt.Printf("%#x\n", v)
	// Output:
	// 0x41414141
}

// The §5.1 discipline applied at the trust boundary.
func ExamplePlaceChecked() {
	m, reg, student, err := exampleWorld()
	if err != nil {
		fmt.Println(err)
		return
	}
	msg, err := serial.Parse("GradStudent{gpa=4.0}")
	if err != nil {
		fmt.Println(err)
		return
	}
	arena := core.Arena{Base: 0x1100, Size: student.Size(layout.ILP32i386), Label: "record_slot"}
	_, err = serial.PlaceChecked(m, layout.ILP32i386, reg, arena, msg)
	fmt.Println(err)
	// Output:
	// core: placement of GradStudent (28 bytes) exceeds record_slot (16 bytes)
}
