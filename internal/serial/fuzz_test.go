package serial

import (
	"testing"

	"repro/internal/layout"
	"repro/internal/mem"
)

// FuzzParse checks that the wire parser never panics and that accepted
// inputs re-encode to something that parses to the same message — the
// robustness property a deserializer sitting on a trust boundary (§3.2)
// must have even before any placement logic runs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Student{}",
		"GradStudent{gpa=4.0,year=2009,ssn=[1,2,3]}",
		"A{x=-1}",
		`B{s="hi \" there"}`,
		"C{f=1.5e300}",
		"D{a=[]}",
		"GradStudent{ssn=[1,2,3,4,5,6,7,8]}",
		"{", "}", "X", "X{", "X{a=}", "X{a=1,}", "X{a=[1,}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		msg, err := Parse(in)
		if err != nil {
			return // rejection is fine; panics are not
		}
		re := Encode(msg)
		back, err := Parse(re)
		if err != nil {
			t.Fatalf("re-encoded message failed to parse: %q -> %q: %v", in, re, err)
		}
		if back.Class != msg.Class || len(back.Fields) != len(msg.Fields) {
			t.Fatalf("round trip changed shape: %q -> %q", in, re)
		}
	})
}

// FuzzPlaceTrusting checks that arbitrary accepted messages never panic
// the trusting deserializer and never write outside mapped memory without
// a fault being reported.
func FuzzPlaceTrusting(f *testing.F) {
	f.Add("GradStudent{gpa=4.0,ssn=[1,2,3]}")
	f.Add("Student{year=2010}")
	f.Add("GradStudent{ssn=[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}")
	f.Add("Student{bogus=1}")
	f.Fuzz(func(t *testing.T, in string) {
		msg, err := Parse(in)
		if err != nil {
			return
		}
		m := &mem.Memory{}
		if _, err := m.Map(mem.SegBSS, 0x1000, 0x100, mem.PermRW); err != nil {
			t.Fatal(err)
		}
		student := layout.NewClass("Student").
			AddField("gpa", layout.Double).
			AddField("year", layout.Int).
			AddField("semester", layout.Int)
		grad := layout.NewClass("GradStudent", student).
			AddField("ssn", layout.ArrayOf(layout.Int, 3))
		reg := NewRegistry(student, grad)
		// Either it places (possibly overflowing inside the mapping) or it
		// errors; a write past the mapping must surface as a fault error.
		if _, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1080, msg); err != nil {
			if _, ok := mem.IsFault(err); !ok {
				// Non-fault errors are the known rejection kinds
				// (unknown class, unsupported member shape).
				return
			}
		}
	})
}
