package serial

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mem"
	"repro/internal/object"
)

// Registry maps wire class names to class definitions — the set of types
// a receiving service knows how to deserialize.
type Registry struct {
	byName map[string]*layout.Class
}

// NewRegistry builds a registry over the given classes.
func NewRegistry(classes ...*layout.Class) *Registry {
	r := &Registry{byName: make(map[string]*layout.Class, len(classes))}
	for _, c := range classes {
		if c != nil {
			r.byName[c.Name()] = c
		}
	}
	return r
}

// Lookup resolves a wire class name.
func (r *Registry) Lookup(name string) (*layout.Class, error) {
	c, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("serial: unknown class %q", name)
	}
	return c, nil
}

// Names returns the registered class names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ElementsError reports a checked decode rejected because a wire array
// carries more elements than the member declares.
type ElementsError struct {
	Field string
	Got   uint64
	Max   uint64
}

// Error implements the error interface.
func (e *ElementsError) Error() string {
	return fmt.Sprintf("serial: field %s: %d elements exceed declared length %d", e.Field, e.Got, e.Max)
}

// PlaceTrusting deserializes msg at addr with the trusting discipline of
// §3.2: the class is whatever the *message* names, placement is unchecked,
// and array fields are written for every received element — even past the
// declared length (Listing 6's copy loop is driven by remoteobj->n). The
// returned object is typed by the message's class.
func PlaceTrusting(m *mem.Memory, model layout.Model, reg *Registry, addr mem.Addr, msg *Message) (*object.Object, error) {
	cls, err := reg.Lookup(msg.Class)
	if err != nil {
		return nil, err
	}
	o, err := core.PlacementNew(m, model, addr, cls)
	if err != nil {
		return nil, err
	}
	if err := populate(o, msg, false); err != nil {
		return nil, err
	}
	return o, nil
}

// PlaceChecked deserializes msg into a bounded arena with the §5.1
// discipline: the placement is size/alignment checked against the arena
// and array writes are clamped to the declared length.
func PlaceChecked(m *mem.Memory, model layout.Model, reg *Registry, arena core.Arena, msg *Message) (*object.Object, error) {
	cls, err := reg.Lookup(msg.Class)
	if err != nil {
		return nil, err
	}
	o, err := core.CheckedPlacementNew(m, model, arena, cls)
	if err != nil {
		return nil, err
	}
	if err := populate(o, msg, true); err != nil {
		return nil, err
	}
	return o, nil
}

// populate writes the message fields into the object. When clamp is set,
// array writes stop at the declared length and excess elements are an
// error; otherwise every received element is written (unchecked indexing).
func populate(o *object.Object, msg *Message, clamp bool) error {
	names := make([]string, 0, len(msg.Fields))
	for n := range msg.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		v := msg.Fields[name]
		f, err := o.Layout().FieldOffset(name)
		if err != nil {
			if clamp {
				return fmt.Errorf("serial: %w", err)
			}
			continue // trusting decoder silently drops unknown fields
		}
		switch v.Kind {
		case KindInt:
			if f.Type.Kind() == layout.KindDouble || f.Type.Kind() == layout.KindFloat {
				if err := o.SetFloat(name, float64(v.Int)); err != nil {
					return err
				}
				continue
			}
			if err := o.SetInt(name, v.Int); err != nil {
				return err
			}
		case KindFloat:
			if err := o.SetFloat(name, v.Float); err != nil {
				return err
			}
		case KindIntArray:
			arr, ok := f.Type.(layout.Array)
			if !ok {
				return fmt.Errorf("serial: field %s is %s, not an array", name, f.Type)
			}
			if clamp && uint64(len(v.Array)) > arr.Len {
				return &ElementsError{Field: name, Got: uint64(len(v.Array)), Max: arr.Len}
			}
			for i, e := range v.Array {
				if err := o.SetIndex(name, int64(i), e); err != nil {
					return err
				}
			}
		case KindString:
			return fmt.Errorf("serial: field %s: string members are not supported by this class model", name)
		default:
			return fmt.Errorf("serial: field %s: unknown value kind", name)
		}
	}
	return nil
}

// Capture encodes a live object's integer/float/int-array members into a
// message — the sending side of the channel.
func Capture(o *object.Object) (*Message, error) {
	fields, err := o.Layout().AllFields()
	if err != nil {
		return nil, err
	}
	msg := NewMessage(o.Class().Name())
	for _, f := range fields {
		switch t := f.Type.(type) {
		case layout.Scalar:
			if t.IsInteger() {
				v, err := o.Int(f.Name)
				if err != nil {
					return nil, err
				}
				msg.Set(f.Name, IntValue(v))
			} else {
				v, err := o.Float(f.Name)
				if err != nil {
					return nil, err
				}
				msg.Set(f.Name, FloatValue(v))
			}
		case layout.Array:
			if s, ok := t.Elem.(layout.Scalar); ok && s.IsInteger() {
				arr := make([]int64, t.Len)
				for i := range arr {
					v, err := o.Index(f.Name, int64(i))
					if err != nil {
						return nil, err
					}
					arr[i] = v
				}
				msg.Set(f.Name, ArrayValue(arr...))
			}
		}
	}
	return msg, nil
}
