// Package serial implements the remote-object channel of §3.2: a compact
// JSON-like wire format for class instances, an encoder, a parser, and
// deserializers that place received objects with placement new.
//
// The wire format is attacker-controlled end to end: the class name, the
// field set, and array lengths are all taken from the message. The
// trusting deserializer (PlaceTrusting) does exactly what the paper's
// victim programs do — "the programmer may not include any code to check
// the size because of the trust on the protocol" — so a message naming a
// larger subclass, or carrying an oversized array, overflows the
// destination arena. PlaceChecked applies the §5.1 discipline instead.
//
// Grammar:
//
//	message := ident '{' [field (',' field)*] '}'
//	field   := ident '=' value
//	value   := number | '[' [number (',' number)*] ']' | '"' text '"'
package serial

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ValueKind discriminates wire values.
type ValueKind int

// Wire value kinds.
const (
	KindInt ValueKind = iota + 1
	KindFloat
	KindIntArray
	KindString
)

// Value is one field value on the wire.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Array []int64
	Str   string
}

// IntValue builds an integer value.
func IntValue(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatValue builds a floating-point value.
func FloatValue(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// ArrayValue builds an integer-array value.
func ArrayValue(vs ...int64) Value {
	return Value{Kind: KindIntArray, Array: append([]int64(nil), vs...)}
}

// StringValue builds a string value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// Message is a decoded (or to-be-encoded) remote object.
type Message struct {
	Class  string
	Fields map[string]Value
}

// NewMessage creates an empty message for the named class.
func NewMessage(class string) *Message {
	return &Message{Class: class, Fields: make(map[string]Value)}
}

// Set assigns a field value and returns the message for chaining.
func (m *Message) Set(name string, v Value) *Message {
	m.Fields[name] = v
	return m
}

// Encode renders the message in wire format with deterministic field order.
func Encode(m *Message) string {
	names := make([]string, 0, len(m.Fields))
	for n := range m.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(m.Class)
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		v := m.Fields[n]
		switch v.Kind {
		case KindInt:
			sb.WriteString(strconv.FormatInt(v.Int, 10))
		case KindFloat:
			s := strconv.FormatFloat(v.Float, 'g', -1, 64)
			sb.WriteString(s)
			if !strings.ContainsAny(s, ".eE") {
				sb.WriteString(".0") // keep the float/int distinction on the wire
			}
		case KindIntArray:
			sb.WriteByte('[')
			for j, e := range v.Array {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.FormatInt(e, 10))
			}
			sb.WriteByte(']')
		case KindString:
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(v.Str, `"`, `\"`))
			sb.WriteByte('"')
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// ParseError reports a malformed wire message.
type ParseError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("serial: parse error at offset %d: %s", e.Pos, e.Msg)
}

type parser struct {
	in  string
	pos int
}

func (p *parser) fail(msg string) error { return &ParseError{Pos: p.pos, Msg: msg} }

func (p *parser) peek() byte {
	if p.pos >= len(p.in) {
		return 0
	}
	return p.in[p.pos]
}

func (p *parser) eat(c byte) error {
	if p.peek() != c {
		return p.fail(fmt.Sprintf("expected %q", string(c)))
	}
	p.pos++
	return nil
}

func isIdentByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	default:
		return false
	}
}

func (p *parser) ident() (string, error) {
	start := p.pos
	for p.pos < len(p.in) && isIdentByte(p.in[p.pos], p.pos == start) {
		p.pos++
	}
	if p.pos == start {
		return "", p.fail("expected identifier")
	}
	return p.in[start:p.pos], nil
}

func (p *parser) number() (string, error) {
	start := p.pos
	if p.peek() == '-' {
		p.pos++
	}
	digits := 0
	for p.pos < len(p.in) && (p.in[p.pos] >= '0' && p.in[p.pos] <= '9' || p.in[p.pos] == '.') {
		if p.in[p.pos] != '.' {
			digits++
		}
		p.pos++
	}
	if digits == 0 {
		return "", p.fail("expected number")
	}
	// Optional exponent: e or E, optional sign, digits.
	if c := p.peek(); c == 'e' || c == 'E' {
		p.pos++
		if c := p.peek(); c == '+' || c == '-' {
			p.pos++
		}
		edigits := 0
		for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
			p.pos++
			edigits++
		}
		if edigits == 0 {
			return "", p.fail("malformed exponent")
		}
	}
	return p.in[start:p.pos], nil
}

func (p *parser) value() (Value, error) {
	switch c := p.peek(); {
	case c == '[':
		p.pos++
		var arr []int64
		if p.peek() == ']' {
			p.pos++
			return Value{Kind: KindIntArray}, nil
		}
		for {
			s, err := p.number()
			if err != nil {
				return Value{}, err
			}
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return Value{}, p.fail("array elements must be integers")
			}
			arr = append(arr, v)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if err := p.eat(']'); err != nil {
			return Value{}, err
		}
		return Value{Kind: KindIntArray, Array: arr}, nil
	case c == '"':
		p.pos++
		var sb strings.Builder
		for p.pos < len(p.in) && p.in[p.pos] != '"' {
			if p.in[p.pos] == '\\' && p.pos+1 < len(p.in) {
				p.pos++
			}
			sb.WriteByte(p.in[p.pos])
			p.pos++
		}
		if err := p.eat('"'); err != nil {
			return Value{}, err
		}
		return Value{Kind: KindString, Str: sb.String()}, nil
	default:
		s, err := p.number()
		if err != nil {
			return Value{}, err
		}
		if strings.ContainsAny(s, ".eE") {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return Value{}, p.fail("bad float")
			}
			return Value{Kind: KindFloat, Float: f}, nil
		}
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, p.fail("bad integer")
		}
		return Value{Kind: KindInt, Int: v}, nil
	}
}

// Parse decodes one wire message.
func Parse(in string) (*Message, error) {
	p := &parser{in: strings.TrimSpace(in)}
	cls, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.eat('{'); err != nil {
		return nil, err
	}
	msg := NewMessage(cls)
	if p.peek() != '}' {
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.eat('='); err != nil {
				return nil, err
			}
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			if _, dup := msg.Fields[name]; dup {
				return nil, p.fail(fmt.Sprintf("duplicate field %q", name))
			}
			msg.Fields[name] = v
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if err := p.eat('}'); err != nil {
		return nil, err
	}
	if p.pos != len(p.in) {
		return nil, p.fail("trailing data")
	}
	return msg, nil
}
