package serial

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/mem"
)

func paperClasses() (student, grad *layout.Class) {
	student = layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad = layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return student, grad
}

func newTestMem(t *testing.T) *mem.Memory {
	t.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegBSS, 0x1000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEncodeParseRoundTrip(t *testing.T) {
	msg := NewMessage("GradStudent").
		Set("gpa", FloatValue(4.0)).
		Set("year", IntValue(2009)).
		Set("ssn", ArrayValue(111, 222, 333)).
		Set("note", StringValue(`he said "hi"`))
	wire := Encode(msg)
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse(%q): %v", wire, err)
	}
	if got.Class != "GradStudent" {
		t.Errorf("class = %q", got.Class)
	}
	if v := got.Fields["gpa"]; v.Kind != KindFloat || v.Float != 4.0 {
		t.Errorf("gpa = %+v", v)
	}
	if v := got.Fields["year"]; v.Kind != KindInt || v.Int != 2009 {
		t.Errorf("year = %+v", v)
	}
	if v := got.Fields["ssn"]; v.Kind != KindIntArray || len(v.Array) != 3 || v.Array[2] != 333 {
		t.Errorf("ssn = %+v", v)
	}
	if v := got.Fields["note"]; v.Kind != KindString || v.Str != `he said "hi"` {
		t.Errorf("note = %+v", v)
	}
}

func TestParseForms(t *testing.T) {
	tests := []struct {
		in   string
		ok   bool
		desc string
	}{
		{"Student{}", true, "empty"},
		{"Student{gpa=3.5}", true, "single float"},
		{"Student{year=-5}", true, "negative int"},
		{"Student{ssn=[]}", true, "empty array"},
		{"Student{ssn=[1]}", true, "one-element array"},
		{"  Student{year=1}  ", true, "surrounding space"},
		{"", false, "empty input"},
		{"Student", false, "missing braces"},
		{"Student{", false, "unterminated"},
		{"Student{year}", false, "missing value"},
		{"Student{year=}", false, "empty value"},
		{"Student{year=1,}", false, "trailing comma"},
		{"Student{year=1}x", false, "trailing data"},
		{"Student{year=1,year=2}", false, "duplicate field"},
		{"Student{ssn=[1.5]}", false, "float in int array"},
		{`Student{s="unterminated}`, false, "unterminated string"},
		{"123{}", false, "numeric class name"},
	}
	for _, tt := range tests {
		t.Run(tt.desc, func(t *testing.T) {
			_, err := Parse(tt.in)
			if ok := err == nil; ok != tt.ok {
				t.Errorf("Parse(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			}
			if err != nil {
				var pe *ParseError
				if !errors.As(err, &pe) {
					t.Errorf("err type = %T", err)
				}
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	student, grad := paperClasses()
	reg := NewRegistry(student, grad, nil)
	if got := reg.Names(); strings.Join(got, ",") != "GradStudent,Student" {
		t.Errorf("names = %v", got)
	}
	c, err := reg.Lookup("Student")
	if err != nil || c != student {
		t.Errorf("lookup = %v, %v", c, err)
	}
	if _, err := reg.Lookup("Evil"); err == nil {
		t.Error("unknown class resolved")
	}
}

func TestPlaceTrustingPopulatesFields(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	msg, err := Parse("GradStudent{gpa=3.5,year=2009,semester=1,ssn=[7,8,9]}")
	if err != nil {
		t.Fatal(err)
	}
	o, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Class() != grad {
		t.Errorf("class = %v", o.Class())
	}
	if v, _ := o.Float("gpa"); v != 3.5 {
		t.Errorf("gpa = %v", v)
	}
	if v, _ := o.Index("ssn", 2); v != 9 {
		t.Errorf("ssn[2] = %d", v)
	}
}

// TestPlaceTrustingOverflow is the §3.2 attack: the receiver reserves a
// Student arena but the wire names GradStudent — the deserializer happily
// writes 28 bytes over 16, landing ssn[] on whatever follows.
func TestPlaceTrustingOverflow(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	// Arena: Student at 0x1100; victim word right behind at 0x1110.
	if err := m.WriteU32(0x1110, 0x11111111); err != nil {
		t.Fatal(err)
	}
	msg, err := Parse("GradStudent{ssn=[1094795585,2,3]}") // 0x41414141
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg); err != nil {
		t.Fatalf("trusting placement rejected: %v", err)
	}
	v, _ := m.ReadU32(0x1110)
	if v != 0x41414141 {
		t.Errorf("victim word = %#x, want attacker ssn[0]", v)
	}
}

// TestPlaceTrustingOversizedArray is the Listing 5/6 variant: the array
// length is taken from the wire, walking past the declared member.
func TestPlaceTrustingOversizedArray(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	msg := NewMessage("GradStudent").Set("ssn", ArrayValue(1, 2, 3, 0x42424242))
	if _, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg); err != nil {
		t.Fatalf("oversized array rejected by trusting decoder: %v", err)
	}
	// Element [3] sits at offset 16+12 = 28: one word past the object.
	v, _ := m.ReadU32(0x1100 + 28)
	if v != 0x42424242 {
		t.Errorf("word past object = %#x", v)
	}
}

func TestPlaceTrustingDropsUnknownFields(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	reg := NewRegistry(student)
	msg := NewMessage("Student").Set("bogus", IntValue(1)).Set("year", IntValue(2001))
	o, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Int("year"); v != 2001 {
		t.Errorf("year = %d", v)
	}
}

func TestPlaceCheckedRejectsOverflow(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	arena := core.Arena{Base: 0x1100, Size: 16, Label: "stud"}
	msg := NewMessage("GradStudent").Set("ssn", ArrayValue(1, 2, 3))
	_, err := PlaceChecked(m, layout.ILP32i386, reg, arena, msg)
	var be *core.BoundsError
	if !errors.As(err, &be) {
		t.Errorf("err = %v, want *core.BoundsError", err)
	}
	// A fitting message is accepted.
	fit := NewMessage("Student").Set("year", IntValue(2001))
	if _, err := PlaceChecked(m, layout.ILP32i386, reg, arena, fit); err != nil {
		t.Errorf("fitting message rejected: %v", err)
	}
}

func TestPlaceCheckedRejectsOversizedArrayAndUnknownField(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	arena := core.Arena{Base: 0x1100, Size: 64, Label: "pool"}
	over := NewMessage("GradStudent").Set("ssn", ArrayValue(1, 2, 3, 4))
	if _, err := PlaceChecked(m, layout.ILP32i386, reg, arena, over); err == nil {
		t.Error("oversized array accepted by checked decoder")
	}
	unk := NewMessage("GradStudent").Set("bogus", IntValue(1))
	if _, err := PlaceChecked(m, layout.ILP32i386, reg, arena, unk); err == nil {
		t.Error("unknown field accepted by checked decoder")
	}
}

func TestPlaceUnknownClass(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	reg := NewRegistry(student)
	msg := NewMessage("Evil")
	if _, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg); err == nil {
		t.Error("unknown class placed")
	}
	if _, err := PlaceChecked(m, layout.ILP32i386, reg, core.Arena{Base: 0x1100, Size: 64}, msg); err == nil {
		t.Error("unknown class placed (checked)")
	}
}

func TestCaptureRoundTrip(t *testing.T) {
	m := newTestMem(t)
	student, grad := paperClasses()
	reg := NewRegistry(student, grad)
	src, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1800,
		NewMessage("GradStudent").
			Set("gpa", FloatValue(3.25)).
			Set("year", IntValue(2010)).
			Set("semester", IntValue(2)).
			Set("ssn", ArrayValue(11, 22, 33)))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Capture(src)
	if err != nil {
		t.Fatal(err)
	}
	wire := Encode(msg)
	back, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse(%q): %v", wire, err)
	}
	dst, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1900, back)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Float("gpa"); v != 3.25 {
		t.Errorf("gpa = %v", v)
	}
	if v, _ := dst.Index("ssn", 1); v != 22 {
		t.Errorf("ssn[1] = %d", v)
	}
}

func TestIntIntoFloatFieldCoerces(t *testing.T) {
	m := newTestMem(t)
	student, _ := paperClasses()
	reg := NewRegistry(student)
	msg := NewMessage("Student").Set("gpa", IntValue(4))
	o, err := PlaceTrusting(m, layout.ILP32i386, reg, 0x1100, msg)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Float("gpa"); v != 4.0 {
		t.Errorf("gpa = %v", v)
	}
}

// Property: Encode then Parse is the identity on messages with int, float
// and array fields.
func TestQuickEncodeParseRoundTrip(t *testing.T) {
	f := func(year int64, gpa float64, ssn []int64) bool {
		if len(ssn) > 6 {
			ssn = ssn[:6]
		}
		msg := NewMessage("GradStudent").
			Set("year", IntValue(year)).
			Set("gpa", FloatValue(gpa)).
			Set("ssn", ArrayValue(ssn...))
		got, err := Parse(Encode(msg))
		if err != nil {
			return false
		}
		if got.Fields["year"].Int != year {
			return false
		}
		g := got.Fields["gpa"]
		gf := g.Float
		if g.Kind == KindInt {
			gf = float64(g.Int)
		}
		if gf != gpa {
			return false
		}
		a := got.Fields["ssn"].Array
		if len(a) != len(ssn) {
			return false
		}
		for i := range a {
			if a[i] != ssn[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
