package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/analyzer"
	"repro/internal/foundry"
)

// MaxAnalyzeBatch bounds one /analyze request: explicit sources plus
// generated foundry programs together.
const MaxAnalyzeBatch = 256

// AnalyzeRequest is the POST /analyze body. Programs are analysed as
// given; a Foundry block additionally generates (and optionally fully
// triages) a seeded corpus server-side, so a client can reproduce any
// CI finding from just (seed, count).
type AnalyzeRequest struct {
	Programs []AnalyzeProgram `json:"programs,omitempty"`
	Foundry  *AnalyzeFoundry  `json:"foundry,omitempty"`
}

// AnalyzeProgram is one source to analyse.
type AnalyzeProgram struct {
	Name string `json:"name"`
	Src  string `json:"src"`
}

// AnalyzeFoundry asks the server to generate programs [0, count) of
// the seeded foundry corpus and analyse each; with Triage set, each
// program is also run through the full four-plane differential triage.
type AnalyzeFoundry struct {
	Seed   int64 `json:"seed"`
	Count  int   `json:"count"`
	Triage bool  `json:"triage,omitempty"`
}

// AnalysisFinding is one diagnostic in an /analyze item — the
// AnalysisResult shape shared by the static and baseline planes.
type AnalysisFinding struct {
	Plane      string `json:"plane"` // static or baseline
	Severity   string `json:"severity,omitempty"`
	Code       string `json:"code,omitempty"` // PNxxx (static only)
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// AnalyzeItem is one program's report, in request order (explicit
// programs first, then foundry programs). A program that fails to
// parse carries its error and per-item status code without failing its
// siblings.
type AnalyzeItem struct {
	Name     string                 `json:"name"`
	Code     int                    `json:"code"`
	Error    string                 `json:"error,omitempty"`
	Findings []AnalysisFinding      `json:"findings,omitempty"`
	Triage   *foundry.ProgramTriage `json:"triage,omitempty"`
}

// AnalyzeResponse is the POST /analyze success envelope.
type AnalyzeResponse struct {
	Results []AnalyzeItem `json:"results"`
	OK      int           `json:"ok"`
	Failed  int           `json:"failed"`
	ServeNS int64         `json:"serve_ns"`
}

// analyzeOne runs the static pass and the baseline scanner over one
// source and renders the findings in report shape.
func analyzeOne(name, src string) AnalyzeItem {
	item := AnalyzeItem{Name: name, Code: http.StatusOK}
	res, err := analyzer.Analyze(src, analyzer.Options{Model: foundry.Model})
	if err != nil {
		return AnalyzeItem{Name: name, Code: http.StatusBadRequest, Error: "analyze: " + err.Error()}
	}
	for _, d := range res.Diags {
		item.Findings = append(item.Findings, AnalysisFinding{
			Plane: "static", Severity: d.Sev.String(), Code: d.Code,
			Line: d.Pos.Line, Col: d.Pos.Col,
			Message: d.Msg, Suggestion: d.Suggestion,
		})
	}
	bf, err := analyzer.Baseline(src)
	if err != nil {
		return AnalyzeItem{Name: name, Code: http.StatusBadRequest, Error: "baseline: " + err.Error()}
	}
	for _, f := range bf {
		item.Findings = append(item.Findings, AnalysisFinding{
			Plane: "baseline",
			Line:  f.Pos.Line, Col: f.Pos.Col,
			Message: fmt.Sprintf("risky call to %s: %s", f.Func, f.Msg),
		})
	}
	return item
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteJSON(w, http.StatusServiceUnavailable, drainingResponse(r))
		return
	}
	if r.Method != http.MethodPost {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("method %s not allowed on /analyze (POST a JSON body)", r.Method),
			Code:  http.StatusBadRequest,
		})
		return
	}
	var req AnalyzeRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid JSON body: " + err.Error(), Code: http.StatusBadRequest})
		return
	}
	total := len(req.Programs)
	if req.Foundry != nil {
		if req.Foundry.Count <= 0 {
			WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: "foundry.count must be positive", Code: http.StatusBadRequest})
			return
		}
		total += req.Foundry.Count
	}
	if total == 0 {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty batch: provide programs and/or a foundry block", Code: http.StatusBadRequest})
		return
	}
	if total > MaxAnalyzeBatch {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("batch of %d exceeds limit %d", total, MaxAnalyzeBatch),
			Code:  http.StatusBadRequest,
		})
		return
	}

	start := s.now()
	resp := AnalyzeResponse{}
	add := func(item AnalyzeItem) {
		resp.Results = append(resp.Results, item)
		if item.Code == http.StatusOK {
			resp.OK++
		} else {
			resp.Failed++
		}
	}
	for i, p := range req.Programs {
		name := p.Name
		if name == "" {
			name = fmt.Sprintf("prog-%d", i)
		}
		add(analyzeOne(name, p.Src))
	}
	if req.Foundry != nil {
		for i := 0; i < req.Foundry.Count; i++ {
			g, err := foundry.Generate(req.Foundry.Seed, i)
			if err != nil {
				add(AnalyzeItem{Name: fmt.Sprintf("foundry-%d-%d", req.Foundry.Seed, i),
					Code: http.StatusInternalServerError, Error: err.Error()})
				continue
			}
			item := analyzeOne(g.Labels.Name, g.Src)
			if req.Foundry.Triage && item.Code == http.StatusOK {
				tr, err := foundry.TriageProgram(g)
				if err != nil {
					item.Code, item.Error = http.StatusInternalServerError, "triage: "+err.Error()
				} else {
					item.Triage = tr
				}
			}
			add(item)
		}
	}
	resp.ServeNS = s.now().Sub(start).Nanoseconds()
	WriteJSON(w, http.StatusOK, resp)
}
