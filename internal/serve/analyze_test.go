package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

func postAnalyze(t *testing.T, url string, body string, wantCode int) AnalyzeResponse {
	t.Helper()
	resp, err := http.Post(url+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /analyze = %d, want %d", resp.StatusCode, wantCode)
	}
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	return out
}

const analyzeVulnSrc = `class Student { public: double gpa; int year; int semester; };
class GradStudent : public Student { public: int ssn[3]; };
void addStudent() {
  Student stud;
  GradStudent *st = new (&stud) GradStudent();
}
`

func TestAnalyzeBatch(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(AnalyzeRequest{Programs: []AnalyzeProgram{
		{Name: "vuln", Src: analyzeVulnSrc},
		{Name: "classic", Src: "void f() {\n  char dst[4];\n  strcpy(dst, \"AAAAAAAA\");\n}\n"},
	}})
	out := postAnalyze(t, ts.URL, string(body), http.StatusOK)
	if out.OK != 2 || out.Failed != 0 || len(out.Results) != 2 {
		t.Fatalf("response = %+v", out)
	}
	var pn001 bool
	for _, f := range out.Results[0].Findings {
		if f.Plane == "static" && f.Code == "PN001" {
			pn001 = true
			if f.Suggestion == "" || f.Line == 0 {
				t.Errorf("PN001 finding missing suggestion/position: %+v", f)
			}
		}
	}
	if !pn001 {
		t.Errorf("vuln program findings = %+v, want PN001", out.Results[0].Findings)
	}
	var risky bool
	for _, f := range out.Results[1].Findings {
		if f.Plane == "baseline" && strings.Contains(f.Message, "strcpy") {
			risky = true
		}
	}
	if !risky {
		t.Errorf("classic program findings = %+v, want baseline strcpy hit", out.Results[1].Findings)
	}
}

func TestAnalyzeFoundryTriage(t *testing.T) {
	_, ts := newTestServer(t)
	out := postAnalyze(t, ts.URL, `{"foundry":{"seed":42,"count":8,"triage":true}}`, http.StatusOK)
	if out.OK != 8 || len(out.Results) != 8 {
		t.Fatalf("response ok=%d results=%d, want 8", out.OK, len(out.Results))
	}
	for _, item := range out.Results {
		if item.Triage == nil {
			t.Fatalf("%s: no triage block", item.Name)
		}
		if item.Triage.Verdict == "divergence" {
			t.Errorf("%s: divergent: %v", item.Name, item.Triage.Divergences)
		}
		if len(item.Triage.Planes) != 4 {
			t.Errorf("%s: %d planes, want 4", item.Name, len(item.Triage.Planes))
		}
	}
}

func TestAnalyzePerItemErrors(t *testing.T) {
	_, ts := newTestServer(t)
	body, _ := json.Marshal(AnalyzeRequest{Programs: []AnalyzeProgram{
		{Name: "broken", Src: "class {{{"},
		{Name: "fine", Src: "void f() {\n  int x = 1;\n}\n"},
	}})
	out := postAnalyze(t, ts.URL, string(body), http.StatusOK)
	if out.OK != 1 || out.Failed != 1 {
		t.Fatalf("ok=%d failed=%d, want 1/1", out.OK, out.Failed)
	}
	if out.Results[0].Code != http.StatusBadRequest || out.Results[0].Error == "" {
		t.Fatalf("broken item = %+v, want per-item 400", out.Results[0])
	}
	if out.Results[1].Code != http.StatusOK {
		t.Fatalf("fine item = %+v, want 200", out.Results[1])
	}
}

func TestAnalyzeRejects(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"zero-count foundry", `{"foundry":{"seed":1,"count":0}}`},
		{"oversized", `{"foundry":{"seed":1,"count":100000}}`},
		{"unknown field", `{"bogus":1}`},
	} {
		resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET: status %d, want 400", resp.StatusCode)
	}
}

func TestAnalyzeDraining(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SetDraining(true)
	resp, err := http.Post(ts.URL+"/analyze", "application/json",
		bytes.NewReader([]byte(`{"foundry":{"seed":1,"count":1}}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining status = %d, want 503", resp.StatusCode)
	}
}
