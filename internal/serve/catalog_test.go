package serve

import (
	"fmt"
	"net/http"
	"net/url"
	"testing"

	"repro/internal/defense"
)

// TestRunAcceptsEveryCatalogDefense closes the last gap of the
// catalogue drift guard: every defense the catalogue exports must be
// accepted end-to-end by the /run endpoint's defense parameter, and
// the shadow configurations must actually report detection over the
// wire. The /experiments catalogue endpoint must advertise the same set.
func TestRunAcceptsEveryCatalogDefense(t *testing.T) {
	_, ts := newTestServer(t)

	advertised := map[string]bool{}
	cat := getJSON(t, ts.URL+"/experiments", http.StatusOK)
	if ds, ok := cat["defenses"].([]any); ok {
		for _, d := range ds {
			if s, ok := d.(string); ok {
				advertised[s] = true
			}
		}
	}

	for _, c := range defense.Catalog() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			if !advertised[c.Name] {
				t.Errorf("/catalog does not advertise defense %q", c.Name)
			}
			u := fmt.Sprintf("%s/run?scenario=construct-overflow&defense=%s", ts.URL, url.QueryEscape(c.Name))
			out := getJSON(t, u, http.StatusOK)
			if out["defense"] != c.Name {
				t.Errorf("result echoes defense %v, want %q", out["defense"], c.Name)
			}
			if out["status"] == nil || out["status"] == "" {
				t.Errorf("result carries no status: %v", out)
			}
			// The two sanitizer configs must report detection over the
			// wire — the served verdict, not just an in-process one.
			if c.Shadow && out["status"] != "detected" {
				t.Errorf("shadow defense %q served status %v, want detected", c.Name, out["status"])
			}
		})
	}
}
