package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/service"
)

// TestCompiledTierConcurrency hammers a Compiled server with
// concurrent /run and /runbatch traffic (NoCache, so every request
// actually executes and exercises the shared compiled-program cache)
// while a rebalance loop concurrently evicts program-cache entries —
// the evict-while-executing case the cluster tier hits when a worker's
// shard shrinks. Run under -race (the CI test job always does), this
// is the data-race gate for the compiled tier; it also spot-checks
// that compiled responses match an interpreted server's byte-for-byte
// on the semantic fields.
func TestCompiledTierConcurrency(t *testing.T) {
	srv := NewServer(Config{
		Workers: 8, Queue: 256, CacheSize: 128, CacheTTL: time.Minute,
		Deadline: 20 * time.Second, MaxDeadline: 30 * time.Second,
		Compiled: true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Service().Drain()
	}()
	programs := srv.Service().Programs()
	if programs == nil {
		t.Fatal("Compiled server has no program cache")
	}

	scenarios := attack.Catalog()[:8]
	defs := []string{defense.None.Name, defense.StackGuardOnly.Name, defense.Hardened.Name}

	post := func(path string, body any) (*http.Response, error) {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	}

	var wg sync.WaitGroup
	var ok, shed, failed int64
	var mu sync.Mutex
	count := func(code int) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case code == http.StatusOK:
			ok++
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			shed++
		default:
			failed++
		}
	}

	// Single-run traffic.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				s := scenarios[(g+i)%len(scenarios)]
				req := service.Request{Scenario: s.ID, Defense: defs[i%len(defs)], NoCache: true}
				resp, err := post("/run", req)
				if err != nil {
					t.Errorf("POST /run: %v", err)
					return
				}
				resp.Body.Close()
				count(resp.StatusCode)
			}
		}(g)
	}

	// Batch traffic: every item executes concurrently server-side
	// against the same program cache.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var batch struct {
					Requests []service.Request `json:"requests"`
				}
				for j := 0; j < 6; j++ {
					s := scenarios[(g+i+j)%len(scenarios)]
					batch.Requests = append(batch.Requests, service.Request{
						Scenario: s.ID, Defense: defs[j%len(defs)], NoCache: true,
					})
				}
				resp, err := post("/runbatch", batch)
				if err != nil {
					t.Errorf("POST /runbatch: %v", err)
					return
				}
				resp.Body.Close()
				count(resp.StatusCode)
			}
		}(g)
	}

	// The rebalance loop: evict programs out from under in-flight
	// executions. Immutable programs make this safe; the next request
	// for an evicted key recompiles via singleflight.
	stop := make(chan struct{})
	var evWG sync.WaitGroup
	evWG.Add(1)
	go func() {
		defer evWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				programs.Evict(2)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	wg.Wait()
	close(stop)
	evWG.Wait()

	if ok == 0 {
		t.Fatalf("no request succeeded (ok=%d shed=%d failed=%d)", ok, shed, failed)
	}
	if failed > 0 {
		t.Fatalf("hard failures under compiled concurrency: ok=%d shed=%d failed=%d", ok, shed, failed)
	}
	st := programs.Stats()
	if st.Misses == 0 || st.Evictions == 0 {
		t.Fatalf("program cache never exercised: %+v", st)
	}
}

// TestCompiledResponsesMatchInterpreted compares the semantic response
// fields of a compiled server against an interpreted one for a slice
// of the matrix — the HTTP-level face of the equivalence contract.
func TestCompiledResponsesMatchInterpreted(t *testing.T) {
	mk := func(compiled bool) (*Server, *httptest.Server) {
		srv := NewServer(Config{
			Workers: 4, Queue: 32, CacheSize: 64, CacheTTL: time.Minute,
			Deadline: 10 * time.Second, MaxDeadline: 30 * time.Second,
			Compiled: compiled,
		})
		return srv, httptest.NewServer(srv.Handler())
	}
	csrv, cts := mk(true)
	isrv, its := mk(false)
	defer func() {
		cts.Close()
		its.Close()
		csrv.Service().Drain()
		isrv.Service().Drain()
	}()

	semantic := func(base, scenario, def string) map[string]any {
		url := fmt.Sprintf("%s/run?scenario=%s&defense=%s", base, scenario, def)
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		// Strip transport/timing fields; keep the semantic payload.
		for _, k := range []string{"cache", "compute_ns", "queue_ns", "serve_ns", "stages", "trace_id"} {
			delete(out, k)
		}
		return out
	}

	for _, s := range attack.Catalog()[:6] {
		for _, def := range []string{defense.None.Name, defense.Hardened.Name, defense.ShadowOnly.Name} {
			got := semantic(cts.URL, s.ID, def)
			want := semantic(its.URL, s.ID, def)
			gb, _ := json.Marshal(got)
			wb, _ := json.Marshal(want)
			if !bytes.Equal(gb, wb) {
				t.Errorf("%s/%s: compiled response %s != interpreted %s", s.ID, def, gb, wb)
			}
		}
	}
	if st := csrv.Service().Programs().Stats(); st.Misses == 0 {
		t.Fatalf("compiled server never compiled a program: %+v", st)
	}
}
