package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/service"
)

// RunResponse is the /run success envelope.
type RunResponse struct {
	*service.Result
	// Cache is hit, miss, coalesced, cloned, or bypass.
	Cache string `json:"cache"`
	// ServeNS is this request's end-to-end time in the server,
	// queueing and cache lookup included.
	ServeNS int64 `json:"serve_ns"`
	// TraceID identifies this request's trace (also echoed in the
	// X-PN-Trace-Id response header); the finished span tree is at
	// /trace/{id}.
	TraceID string `json:"trace_id"`
	// Stages is the per-stage latency breakdown in milliseconds
	// (queue_wait, cache_lookup, cache_fill, clone, execute,
	// shadow_check — stages that did not occur are absent).
	Stages map[string]float64 `json:"stages,omitempty"`
}

// ErrorResponse is every non-200 body.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
	// Reject carries the structured load-shedding state for 429/503.
	Reject *service.Rejection `json:"reject,omitempty"`
	// Crashes carries supervised crash records for 500s.
	Crashes any `json:"crashes,omitempty"`
}

// drainingResponse is the structured 503 every endpoint returns while
// the HTTP layer is draining.
func drainingResponse(r *http.Request) ErrorResponse {
	return ErrorResponse{
		Error: "server draining", Code: http.StatusServiceUnavailable,
		Reject: &service.Rejection{
			Code: 503, Reason: service.ReasonDraining,
			Tenant: service.NormalizeTenant(r.Header.Get(TenantHeader)),
		},
	}
}

// applyTrustedHeaders copies the router hop headers into req — only
// under Config.TrustAdmitted, so a front-door server cannot be talked
// into skipping its own admission control.
func (s *Server) applyTrustedHeaders(req *service.Request, r *http.Request) {
	if !s.cfg.TrustAdmitted {
		return
	}
	if r.Header.Get(AdmittedHeader) != "" {
		req.Admitted = true
	}
	req.FillFrom = r.Header.Get(FillFromHeader)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteJSON(w, http.StatusServiceUnavailable, drainingResponse(r))
		return
	}
	req, err := ParseRequest(r)
	if err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: http.StatusBadRequest})
		return
	}
	s.applyTrustedHeaders(&req, r)
	start := s.now()
	res, cacheTok, rt, err := s.svc.HandleTraced(r.Context(), req)
	if rt != nil {
		w.Header().Set(TraceHeader, rt.TraceID)
	}
	if err != nil {
		s.WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, RunResponse{
		Result:  res,
		Cache:   cacheTok,
		ServeNS: s.now().Sub(start).Nanoseconds(),
		TraceID: rt.TraceID,
		Stages:  rt.StageMS,
	})
}

// BatchRequest is the POST /runbatch body.
type BatchRequest struct {
	Requests []service.Request `json:"requests"`
}

// BatchItem is one request's outcome in a /runbatch response, in
// request order. Successful items carry the result and Code 200; failed
// items carry the structured error fields and their per-item status
// code — one bad request never fails its siblings.
type BatchItem struct {
	*service.Result
	Cache string `json:"cache,omitempty"`
	Error string `json:"error,omitempty"`
	Code  int    `json:"code"`
	// Reject carries the structured load-shedding state for shed items.
	Reject *service.Rejection `json:"reject,omitempty"`
}

// BatchResponse is the POST /runbatch success envelope.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	OK      int         `json:"ok"`
	Failed  int         `json:"failed"`
	// ServeNS is the whole batch's end-to-end time in the server.
	ServeNS int64 `json:"serve_ns"`
}

// handleRunBatch admits up to service.MaxBatchSize requests in one
// call. Items execute concurrently through the normal per-request path
// (lanes, deadlines, cache, shedding per item) while sharing one
// template-pool lookup; see docs/serving.md for the schema.
func (s *Server) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		WriteJSON(w, http.StatusServiceUnavailable, drainingResponse(r))
		return
	}
	if r.Method != http.MethodPost {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("method %s not allowed on /runbatch (POST a JSON body)", r.Method),
			Code:  http.StatusBadRequest,
		})
		return
	}
	var breq BatchRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid JSON body: " + err.Error(), Code: http.StatusBadRequest})
		return
	}
	if len(breq.Requests) == 0 {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty batch", Code: http.StatusBadRequest})
		return
	}
	if len(breq.Requests) > service.MaxBatchSize {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("batch of %d exceeds limit %d", len(breq.Requests), service.MaxBatchSize),
			Code:  http.StatusBadRequest,
		})
		return
	}

	// The batch's tenant comes from the header, like single requests:
	// bodies cannot impersonate other tenants.
	for i := range breq.Requests {
		breq.Requests[i].Tenant = r.Header.Get(TenantHeader)
		s.applyTrustedHeaders(&breq.Requests[i], r)
	}

	start := time.Now()
	outcomes := s.svc.HandleBatch(r.Context(), breq.Requests)
	resp := BatchResponse{Results: make([]BatchItem, len(outcomes))}
	for i, o := range outcomes {
		if o.Err == nil {
			resp.Results[i] = BatchItem{Result: o.Result, Cache: o.Cache, Code: http.StatusOK}
			resp.OK++
			continue
		}
		code, rej := ErrorStatus(o.Err)
		resp.Results[i] = BatchItem{Error: o.Err.Error(), Code: code, Reject: rej}
		resp.Failed++
	}
	resp.ServeNS = time.Since(start).Nanoseconds()
	WriteJSON(w, http.StatusOK, resp)
}

// ErrorStatus maps a service error to its status code (and structured
// rejection, when it is one) — the mapping both whole responses and
// batch items use.
func ErrorStatus(err error) (int, *service.Rejection) {
	var bad *service.BadRequest
	var rej *service.Rejection
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest, nil
	case errors.As(err, &rej):
		return rej.Code, rej
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, nil
	case errors.Is(err, context.Canceled):
		return 499, nil
	default:
		return http.StatusInternalServerError, nil
	}
}

// WriteError maps service errors onto structured HTTP responses.
func (s *Server) WriteError(w http.ResponseWriter, err error) {
	var bad *service.BadRequest
	var rej *service.Rejection
	var exe *service.ExecError
	switch {
	case errors.As(err, &bad):
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error(), Code: http.StatusBadRequest})
	case errors.As(err, &rej):
		// Standard Retry-After is whole seconds (rounded up); the
		// millisecond-precision hint rides alongside for clients (pnload)
		// that can use it.
		w.Header().Set("Retry-After", strconv.FormatInt((rej.RetryAfterMS+999)/1000, 10))
		w.Header().Set("X-PN-Retry-After-MS", strconv.FormatInt(rej.RetryAfterMS, 10))
		WriteJSON(w, rej.Code, ErrorResponse{Error: err.Error(), Code: rej.Code, Reject: rej})
	case errors.As(err, &exe):
		WriteJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: err.Error(), Code: http.StatusInternalServerError, Crashes: exe.Crashes,
		})
	case errors.Is(err, context.DeadlineExceeded):
		WriteJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error(), Code: http.StatusGatewayTimeout})
	case errors.Is(err, context.Canceled):
		// 499: client closed request (nginx convention).
		WriteJSON(w, 499, ErrorResponse{Error: err.Error(), Code: 499})
	default:
		WriteJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Code: http.StatusInternalServerError})
	}
}

// ParseRequest accepts POST JSON or GET query parameters, and reads
// the tenant and trace identity headers.
func ParseRequest(r *http.Request) (service.Request, error) {
	req, err := parseRequestBody(r)
	if err != nil {
		return req, err
	}
	req.Tenant = r.Header.Get(TenantHeader)
	req.TraceID = r.Header.Get(TraceHeader)
	return req, nil
}

func parseRequestBody(r *http.Request) (service.Request, error) {
	var req service.Request
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return req, fmt.Errorf("invalid JSON body: %w", err)
		}
		return req, nil
	case http.MethodGet:
		q := r.URL.Query()
		req.Experiment = q.Get("experiment")
		req.Scenario = q.Get("scenario")
		req.Defense = q.Get("defense")
		req.Model = q.Get("model")
		req.Faults = q.Get("faults")
		req.Priority = q.Get("priority")
		var err error
		if v := q.Get("seed"); v != "" {
			if req.Seed, err = strconv.ParseInt(v, 10, 64); err != nil {
				return req, fmt.Errorf("invalid seed: %w", err)
			}
		}
		if v := q.Get("chaos_prob"); v != "" {
			if req.ChaosProb, err = strconv.ParseFloat(v, 64); err != nil {
				return req, fmt.Errorf("invalid chaos_prob: %w", err)
			}
		}
		if v := q.Get("deadline_ms"); v != "" {
			if req.DeadlineMS, err = strconv.ParseInt(v, 10, 64); err != nil {
				return req, fmt.Errorf("invalid deadline_ms: %w", err)
			}
		}
		if v := q.Get("repeat"); v != "" {
			if req.Repeat, err = strconv.Atoi(v); err != nil {
				return req, fmt.Errorf("invalid repeat: %w", err)
			}
		}
		if v := q.Get("no_cache"); v != "" {
			if req.NoCache, err = strconv.ParseBool(v); err != nil {
				return req, fmt.Errorf("invalid no_cache: %w", err)
			}
		}
		return req, nil
	default:
		return req, fmt.Errorf("method %s not allowed on /run", r.Method)
	}
}

// Catalog is the /experiments payload: everything servable.
type Catalog struct {
	Experiments []CatalogExperiment `json:"experiments"`
	Scenarios   []CatalogScenario   `json:"scenarios"`
	Defenses    []string            `json:"defenses"`
	Models      []string            `json:"models"`
}

// CatalogExperiment is one experiment's catalogue entry.
type CatalogExperiment struct {
	ID    string `json:"id"`
	Ref   string `json:"ref"`
	Title string `json:"title"`
}

// CatalogScenario is one attack scenario's catalogue entry.
type CatalogScenario struct {
	ID  string `json:"id"`
	Ref string `json:"ref"`
}

// BuildCatalog assembles the servable catalogue. The router serves it
// locally — every node holds the same corpus, so no forward is needed.
func BuildCatalog() Catalog {
	var c Catalog
	for _, e := range experiments.All() {
		c.Experiments = append(c.Experiments, CatalogExperiment{ID: e.ID, Ref: e.Ref, Title: e.Title})
	}
	for _, sc := range attack.Catalog() {
		c.Scenarios = append(c.Scenarios, CatalogScenario{ID: sc.ID, Ref: sc.Ref})
	}
	for _, d := range defense.Catalog() {
		c.Defenses = append(c.Defenses, d.Name)
	}
	c.Models = []string{layout.ILP32.Name, layout.ILP32i386.Name, layout.LP64.Name}
	return c
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, BuildCatalog())
}

// handleHealth is liveness: 200 for the whole process lifetime, even
// while draining — a draining process is shutting down cleanly, not
// dead, and must not be killed by its supervisor.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptime_ms": time.Since(s.started).Milliseconds(),
	})
}

// ReadyResponse is the /readyz body: the status string plus the two
// boolean causes, so a router (or pnload's retry loop) can distinguish
// "draining — stop retrying this node" from "saturated — back off and
// retry" without string-matching.
type ReadyResponse struct {
	Status    string `json:"status"`
	Draining  bool   `json:"draining"`
	Saturated bool   `json:"saturated"`
	UptimeMS  int64  `json:"uptime_ms"`
}

// handleReady is readiness: 503 while draining or while the adaptive
// concurrency limiter has fully closed (limit at its floor with every
// slot taken) — both mean "route new traffic elsewhere".
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		Status:    "ready",
		Draining:  s.draining.Load(),
		Saturated: s.svc.Scheduler().Limiter().Saturated(),
		UptimeMS:  time.Since(s.started).Milliseconds(),
	}
	code := http.StatusOK
	switch {
	case resp.Draining:
		resp.Status, code = "draining", http.StatusServiceUnavailable
	case resp.Saturated:
		resp.Status, code = "saturated", http.StatusServiceUnavailable
	}
	WriteJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Set(obs.MetricServeUptime, s.now().Sub(s.started).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.reg.Exposition())
}

// handleCache serves GET /cache/{key}: a peek into the local result
// cache by content address — 200 with the stored Result, or 404. This
// is the cross-node cache-fill donor side: after a ring rebalance the
// new owner of a key clones the previous owner's entry through it.
// Reads refresh LRU recency but never execute anything.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/cache/")
	if key == "" || strings.Contains(key, "/") {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "want /cache/{key}", Code: http.StatusBadRequest})
		return
	}
	res, ok := s.svc.Cache().Get(key)
	if !ok {
		WriteJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("key %q not cached", key), Code: http.StatusNotFound})
		return
	}
	WriteJSON(w, http.StatusOK, res)
}

// WriteJSON writes v as indented JSON with status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
