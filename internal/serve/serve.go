// Package serve is the HTTP face of one internal/service instance: the
// endpoint set cmd/pnserve exposes (/run, /runbatch, /experiments,
// /healthz, /readyz, /metrics, /watch, /trace/{id}, /cache/{key}) as a
// reusable library. cmd/pnserve wraps it in a process; internal/cluster
// embeds it to run a fleet of in-process workers behind the
// consistent-hash router, so cluster tests and the pnload cluster
// sweep exercise the exact handlers production traffic hits.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// Hop and identity headers of the serving tier.
const (
	// TenantHeader selects the admission-control tenant. The body cannot
	// set it (Request.Tenant is excluded from JSON), so quota identity is
	// a transport-level property, like authentication would be.
	TenantHeader = "X-PN-Tenant"
	// TraceHeader carries the client's trace identity. Honoured on /run
	// (and echoed back); a client-supplied ID also arms detailed
	// per-write instrumentation for that request. The cluster router
	// relays it so GET /trace/{id} works end-to-end across the hop.
	TraceHeader = "X-PN-Trace-Id"
	// AdmittedHeader marks a request already admitted by the cluster
	// router's quota and limiter. Honoured only under Config.TrustAdmitted
	// (worker mode behind a router); the worker then skips its own quota
	// and limiter so fleet accounting never double-counts.
	AdmittedHeader = "X-PN-Admitted"
	// FillFromHeader carries the base URL of the peer that owned this
	// request's cache key before a ring rebalance. Honoured only under
	// Config.TrustAdmitted: on a miss the worker clones the peer's cached
	// result (GET {peer}/cache/{key}) instead of recomputing.
	FillFromHeader = "X-PN-Fill-From"
)

// Config assembles a Server. The zero value is not useful; cmd/pnserve
// and the cluster fleet fill it from flags.
type Config struct {
	Workers     int
	Queue       int
	CacheSize   int
	CacheTTL    time.Duration
	Deadline    time.Duration
	MaxDeadline time.Duration
	// Admission-control knobs.
	TenantRate       float64
	TenantBurst      float64
	Aging            time.Duration
	P99Target        time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Observability knobs.
	TraceCap      int
	Deterministic bool
	// TrustAdmitted arms the router hop headers (AdmittedHeader,
	// FillFromHeader). Only workers that sit behind a cluster router set
	// it: a front-door server must ignore those headers, or any client
	// could skip admission control.
	TrustAdmitted bool
	// PeerFetch overrides the cross-node cache-fill transport (tests).
	// Nil selects the HTTP client fetching GET {peer}/cache/{key}.
	PeerFetch func(ctx context.Context, peerURL, key string) (*service.Result, error)
	// Compiled arms the compiled-program tier: cache-miss scenario
	// executions (no chaos, no detail tracing) replay cached
	// straight-line programs instead of interpreting (see
	// internal/compile).
	Compiled bool
}

// Server is the HTTP face of one service.Service.
type Server struct {
	cfg      Config
	svc      *service.Service
	reg      *obs.Registry
	draining atomic.Bool
	now      func() time.Time
	started  time.Time
}

// NewServer builds a Server and starts its worker pool.
func NewServer(cfg Config) *Server {
	reg := obs.NewRegistry()
	now := time.Now
	if cfg.Deterministic {
		// The virtual clock makes every duration a count of clock reads:
		// synthetic, but byte-identical across double runs of the same
		// sequential request sequence — the /watch determinism gate.
		now = service.NewVirtualClock().Now
	}
	bus := obs.NewBus(0)
	bus.OnSubscribers = func(n int) { reg.Set(obs.MetricWatchSubscribers, float64(n)) }
	bus.OnDrop = func(n uint64) { reg.Add(obs.MetricWatchDropped, float64(n)) }
	describeServerMetrics(reg)
	peerFetch := cfg.PeerFetch
	if peerFetch == nil {
		peerFetch = HTTPPeerFetch(nil)
	}
	s := &Server{
		cfg: cfg,
		svc: service.New(service.Config{
			Workers:         cfg.Workers,
			QueueDepth:      cfg.Queue,
			CacheCapacity:   cfg.CacheSize,
			CacheTTL:        cfg.CacheTTL,
			DefaultDeadline: cfg.Deadline,
			MaxDeadline:     cfg.MaxDeadline,
			Quota:           service.QuotaConfig{Rate: cfg.TenantRate, Burst: cfg.TenantBurst},
			Limiter:         service.LimiterConfig{TargetP99: cfg.P99Target},
			Breaker:         service.BreakerConfig{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown},
			AgingThreshold:  cfg.Aging,
			Now:             now,
			Registry:        reg,
			Bus:             bus,
			TraceCapacity:   cfg.TraceCap,
			PeerFetch:       peerFetch,
			Compiled:        cfg.Compiled,
		}),
		reg: reg,
		now: now,
	}
	s.started = s.now()
	reg.Set(obs.MetricBuildInfo, 1,
		obs.L("version", service.CodeVersion),
		obs.L("go_version", runtime.Version()),
		obs.L("commit", buildCommit()))
	return s
}

// describeServerMetrics declares the process-level families the HTTP
// layer owns (the service describes the serving ones).
func describeServerMetrics(reg *obs.Registry) {
	reg.Describe(obs.MetricBuildInfo, "build identity: constant 1 with version labels", obs.TypeGauge)
	reg.Describe(obs.MetricServeUptime, "seconds since the server started", obs.TypeGauge)
	reg.Describe(obs.MetricWatchSubscribers, "attached /watch subscribers", obs.TypeGauge)
	reg.Describe(obs.MetricWatchDropped, "events dropped on slow /watch subscribers", obs.TypeCounter)
}

// buildCommit extracts the VCS revision stamped into the binary, or
// "unknown" (test binaries, go run).
func buildCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// Service exposes the underlying service (drain, cache, traces).
func (s *Server) Service() *service.Service { return s.svc }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetDraining flips the HTTP-level draining flag (503 on /run,
// failing readiness) without touching the scheduler — tests use it to
// observe the drained surface; production drains via BeginDrain.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the HTTP-level draining flag.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain starts a graceful drain: admission stops (503 + failing
// readiness) and the scheduler finishes in-flight and queued work
// before returning.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.svc.Drain()
}

// Handler returns the endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/runbatch", s.handleRunBatch)
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/experiments", s.handleCatalog)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/watch", s.handleWatch)
	mux.HandleFunc("/trace/", s.handleTrace)
	mux.HandleFunc("/cache/", s.handleCache)
	return mux
}

// HTTPPeerFetch builds the default cross-node cache-fill transport:
// GET {peer}/cache/{key} with the caller's context. A 404 (peer does
// not hold the key) returns (nil, nil) so the service falls back to
// computing; transport errors propagate for the same fallback.
func HTTPPeerFetch(client *http.Client) func(ctx context.Context, peerURL, key string) (*service.Result, error) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return func(ctx context.Context, peerURL, key string) (*service.Result, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peerURL+"/cache/"+key, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			return nil, nil
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return nil, fmt.Errorf("peer %s: /cache/{key} = %d", peerURL, resp.StatusCode)
		}
		var res service.Result
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&res); err != nil {
			return nil, fmt.Errorf("peer %s: invalid cache body: %w", peerURL, err)
		}
		return &res, nil
	}
}
