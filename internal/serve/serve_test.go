package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(Config{
		Workers: 4, Queue: 16, CacheSize: 32,
		CacheTTL: time.Minute, Deadline: 10 * time.Second, MaxDeadline: 30 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Service().Drain()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: invalid JSON: %v", url, err)
	}
	return out
}

func TestRunEndpointCachesRepeats(t *testing.T) {
	_, ts := newTestServer(t)

	first := getJSON(t, ts.URL+"/run?experiment=E1", http.StatusOK)
	if first["cache"] != "miss" || first["status"] != "ok" || first["id"] != "E1" {
		t.Fatalf("first response = %v", first)
	}
	second := getJSON(t, ts.URL+"/run?experiment=E1", http.StatusOK)
	if second["cache"] != "hit" {
		t.Fatalf("second response cache = %v, want hit", second["cache"])
	}
	if first["key"] != second["key"] {
		t.Fatalf("keys differ across identical requests: %v vs %v", first["key"], second["key"])
	}
}

func TestRunEndpointPostScenario(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"scenario":"bss-overflow","defense":"stackguard","model":"LP64","priority":"high"}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run = %d, want 200", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["kind"] != "scenario" || out["id"] != "bss-overflow" || out["model"] != "LP64" {
		t.Fatalf("response = %v", out)
	}
	if out["status"] == "" {
		t.Fatal("scenario response missing status")
	}
}

func TestRunEndpointBadRequest(t *testing.T) {
	_, ts := newTestServer(t)
	out := getJSON(t, ts.URL+"/run?experiment=E99", http.StatusBadRequest)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "E99") {
		t.Fatalf("400 body = %v, want the unknown ID named", out)
	}
	// The unknown-ID text comes from experiments.ByID — the same error
	// every other cmd prints.
	if msg := out["error"].(string); !strings.Contains(msg, "unknown experiment") {
		t.Fatalf("error text %q, want experiments.ByID's wording", msg)
	}
}

func TestCatalogHealthMetrics(t *testing.T) {
	srv, ts := newTestServer(t)

	cat := getJSON(t, ts.URL+"/experiments", http.StatusOK)
	if exps, ok := cat["experiments"].([]any); !ok || len(exps) < 19 {
		t.Fatalf("catalog experiments = %v", cat["experiments"])
	}
	if scns, ok := cat["scenarios"].([]any); !ok || len(scns) == 0 {
		t.Fatalf("catalog scenarios = %v", cat["scenarios"])
	}

	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	// Generate one request so serving metrics exist, then scrape.
	getJSON(t, ts.URL+"/run?experiment=E5", http.StatusOK)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q, want Prometheus text", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"pn_serve_requests_total", "pn_serve_cache_events_total", "pn_serve_latency_ms"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}

	// Draining: liveness stays 200 (the process is alive and shutting
	// down cleanly), readiness fails, /run sheds with 503.
	srv.SetDraining(true)
	if out := getJSON(t, ts.URL+"/healthz", http.StatusOK); out["status"] != "draining" {
		t.Fatalf("draining healthz = %v, want 200 with draining status", out)
	}
	if out := getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable); out["status"] != "draining" {
		t.Fatalf("draining readyz = %v", out)
	}
	out := getJSON(t, ts.URL+"/run?experiment=E1", http.StatusServiceUnavailable)
	if rej, ok := out["reject"].(map[string]any); !ok || rej["reason"] != "draining" {
		t.Fatalf("draining /run = %v, want structured draining rejection", out)
	}
}

// TestReadyzLiveness: a fresh server is both live and ready.
func TestReadyzReady(t *testing.T) {
	_, ts := newTestServer(t)
	if out := getJSON(t, ts.URL+"/readyz", http.StatusOK); out["status"] != "ready" {
		t.Fatalf("readyz = %v, want ready", out)
	}
}

// TestTenantQuotaOverHTTP: the X-PN-Tenant header selects the quota
// bucket; an exhausted tenant gets a structured 429 with the quota
// reason, both Retry-After headers, and its tenant echoed — while
// other tenants keep flowing.
func TestTenantQuotaOverHTTP(t *testing.T) {
	srv := NewServer(Config{
		Workers: 4, Queue: 16, CacheSize: 32,
		CacheTTL: time.Minute, Deadline: 10 * time.Second, MaxDeadline: 30 * time.Second,
		TenantRate: 0.001, TenantBurst: 1, // one request, then a very slow refill
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Service().Drain() })

	do := func(tenant, experiment string) *http.Response {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/run?no_cache=true&experiment="+experiment, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-PN-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := do("Greedy", "E1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first tenant request = %d, want 200", resp.StatusCode)
	}

	resp = do("Greedy", "E2")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second tenant request = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || resp.Header.Get("X-PN-Retry-After-MS") == "" {
		t.Fatal("429 missing Retry-After / X-PN-Retry-After-MS headers")
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	rej, ok := out["reject"].(map[string]any)
	if !ok || rej["reason"] != "quota" || rej["tenant"] != "greedy" {
		t.Fatalf("429 body = %v, want quota rejection for normalized tenant greedy", out)
	}

	// A different tenant still has its own full bucket.
	resp = do("other", "E1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant = %d, want 200 (quota not isolated per tenant)", resp.StatusCode)
	}
}

func postJSON(t *testing.T, url, body string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s = %d, want %d (body: %s)", url, resp.StatusCode, wantCode, raw)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: invalid JSON: %v", url, err)
	}
	return out
}

func TestRunBatchMixedOutcomes(t *testing.T) {
	_, ts := newTestServer(t)
	out := postJSON(t, ts.URL+"/runbatch", `{"requests":[
		{"experiment":"E1"},
		{"scenario":"bss-overflow","defense":"nx"},
		{"experiment":"does-not-exist"}
	]}`, http.StatusOK)
	if out["ok"] != float64(2) || out["failed"] != float64(1) {
		t.Fatalf("batch envelope = %v, want ok=2 failed=1", out)
	}
	results, ok := out["results"].([]any)
	if !ok || len(results) != 3 {
		t.Fatalf("results = %v, want 3 in request order", out["results"])
	}
	first := results[0].(map[string]any)
	if first["id"] != "E1" || first["code"] != float64(200) || first["cache"] == "" {
		t.Fatalf("item 0 = %v, want E1 ok with cache token", first)
	}
	second := results[1].(map[string]any)
	if second["id"] != "bss-overflow" || second["code"] != float64(200) {
		t.Fatalf("item 1 = %v, want bss-overflow ok", second)
	}
	third := results[2].(map[string]any)
	if third["code"] != float64(400) || third["error"] == "" {
		t.Fatalf("item 2 = %v, want per-item 400 with error text", third)
	}
	// A failed sibling never fails the call: whole-batch serve_ns present.
	if _, ok := out["serve_ns"]; !ok {
		t.Fatalf("batch envelope missing serve_ns: %v", out)
	}
}

func TestRunBatchValidation(t *testing.T) {
	srv, ts := newTestServer(t)

	// Empty batch.
	out := postJSON(t, ts.URL+"/runbatch", `{"requests":[]}`, http.StatusBadRequest)
	if !strings.Contains(out["error"].(string), "empty") {
		t.Fatalf("empty batch error = %v", out)
	}
	// Unknown top-level fields are rejected.
	postJSON(t, ts.URL+"/runbatch", `{"requests":[{"experiment":"E1"}],"oops":1}`, http.StatusBadRequest)
	// Oversize batch.
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i < 65; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"experiment":"E1"}`)
	}
	sb.WriteString(`]}`)
	out = postJSON(t, ts.URL+"/runbatch", sb.String(), http.StatusBadRequest)
	if !strings.Contains(out["error"].(string), "exceeds limit") {
		t.Fatalf("oversize batch error = %v", out)
	}
	// GET is refused.
	getJSON(t, ts.URL+"/runbatch", http.StatusBadRequest)
	// Draining answers the structured 503.
	srv.SetDraining(true)
	out = postJSON(t, ts.URL+"/runbatch", `{"requests":[{"experiment":"E1"}]}`, http.StatusServiceUnavailable)
	if rej, ok := out["reject"].(map[string]any); !ok || rej["reason"] != "draining" {
		t.Fatalf("draining /runbatch = %v, want structured draining rejection", out)
	}
}
