package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
)

// watchFilter is the /watch query-parameter filter: empty fields match
// everything. Gap events always pass — a consumer must hear about loss
// regardless of its filters.
type watchFilter struct {
	trace  string
	tenant string
	kinds  map[string]bool
}

func parseWatchFilter(r *http.Request) watchFilter {
	q := r.URL.Query()
	f := watchFilter{trace: q.Get("trace"), tenant: q.Get("tenant")}
	if ks := q.Get("kind"); ks != "" {
		f.kinds = make(map[string]bool)
		for _, k := range strings.Split(ks, ",") {
			if k = strings.TrimSpace(k); k != "" {
				f.kinds[k] = true
			}
		}
	}
	return f
}

func (f watchFilter) match(ev obs.BusEvent) bool {
	if ev.Kind == obs.KindGap {
		return true
	}
	if f.trace != "" && ev.Trace != f.trace {
		return false
	}
	if f.tenant != "" && ev.Tenant != f.tenant {
		return false
	}
	if f.kinds != nil && !f.kinds[ev.Kind] {
		return false
	}
	return true
}

// handleWatch streams the live event bus. Server-Sent Events by
// default; Accept: application/x-ndjson selects raw NDJSON (one
// obs.BusEvent per line — what pntrace -follow and the CI determinism
// gate consume). Filters: ?trace=, ?tenant=, ?kind=a,b. Resume: the
// Last-Event-ID header (or ?after=) replays from the ring buffer; a
// cursor that fell off the ring gets a synthetic gap event first.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	bus := s.svc.Bus()
	if bus == nil {
		WriteJSON(w, http.StatusNotImplemented, ErrorResponse{
			Error: "event bus not configured", Code: http.StatusNotImplemented})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		WriteJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: "streaming unsupported by connection", Code: http.StatusInternalServerError})
		return
	}

	var afterSeq uint64
	lastID := r.Header.Get("Last-Event-ID")
	if lastID == "" {
		lastID = r.URL.Query().Get("after")
	}
	if lastID != "" {
		v, err := strconv.ParseUint(lastID, 10, 64)
		if err != nil {
			WriteJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: "invalid Last-Event-ID " + strconv.Quote(lastID), Code: http.StatusBadRequest})
			return
		}
		afterSeq = v
	}

	ndjson := strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
	filter := parseWatchFilter(r)

	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	sub := bus.Subscribe(afterSeq)
	defer sub.Close()

	enc := json.NewEncoder(w)
	writeEvent := func(ev obs.BusEvent) error {
		if ndjson {
			return enc.Encode(ev)
		}
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if ev.Seq > 0 {
			if _, err := fmt.Fprintf(w, "id: %d\n", ev.Seq); err != nil {
				return err
			}
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, raw)
		return err
	}

	// The per-connection stream header: schema version and resume
	// position. Synthesized here (never stored in the ring), so every
	// connection starts with a parseable preamble.
	hello := obs.BusEvent{Kind: obs.KindHello, Data: map[string]string{
		"schema": obs.WatchSchema,
		"after":  strconv.FormatUint(afterSeq, 10),
	}}
	if err := writeEvent(hello); err != nil {
		return
	}
	flusher.Flush()

	for {
		ev, ok := sub.Next(r.Context())
		if !ok {
			return
		}
		if !filter.match(ev) {
			continue
		}
		if err := writeEvent(ev); err != nil {
			return
		}
		flusher.Flush()
	}
}

// handleTrace serves GET /trace/{id}: the finished span tree of one
// request, with its stage-latency breakdown, as JSON.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/trace/")
	if id == "" || strings.Contains(id, "/") {
		WriteJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "want /trace/{id}", Code: http.StatusBadRequest})
		return
	}
	rt, ok := s.svc.Trace(id)
	if !ok {
		WriteJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("no finished trace %q (the store holds the most recent %d)",
				id, service.DefaultTraceCapacity), Code: http.StatusNotFound})
		return
	}
	WriteJSON(w, http.StatusOK, rt)
}
