package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

func newDeterministicServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(Config{
		Workers: 1, Queue: 16, CacheSize: 32,
		CacheTTL: time.Minute, Deadline: 10 * time.Second, MaxDeadline: 30 * time.Second,
		Deterministic: true,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Service().Drain()
	})
	return srv, ts
}

// openWatch attaches an NDJSON /watch stream and returns a line
// scanner plus a closer.
func openWatch(t *testing.T, base, params string, header http.Header) (*bufio.Scanner, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/watch"+params, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("GET /watch = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		cancel()
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return sc, func() { cancel(); resp.Body.Close() }
}

// readUntilTraceEnd consumes stream lines through the first trace-end
// event, returning the raw lines (hello included).
func readUntilTraceEnd(t *testing.T, sc *bufio.Scanner) []string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	var out []string
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended after %d lines without trace-end", len(out))
			}
			out = append(out, line)
			var ev obs.BusEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad stream line %q: %v", line, err)
			}
			if ev.Kind == obs.KindTraceEnd {
				return out
			}
		case <-deadline:
			t.Fatalf("no trace-end within 10s; saw %d lines", len(out))
		}
	}
}

func TestWatchStreamsRun(t *testing.T) {
	_, ts := newDeterministicServer(t)
	sc, closeWatch := openWatch(t, ts.URL, "", nil)
	defer closeWatch()

	resp, err := http.Post(ts.URL+"/run?scenario=stack-ret", "application/json",
		strings.NewReader(`{"scenario":"stack-ret"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-PN-Trace-Id") == "" {
		t.Fatal("/run response missing the X-PN-Trace-Id echo")
	}

	lines := readUntilTraceEnd(t, sc)
	counts := map[string]int{}
	for _, line := range lines {
		var ev obs.BusEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		counts[ev.Kind]++
	}
	if counts[obs.KindHello] != 1 {
		t.Errorf("stream did not open with exactly one hello (saw %v)", counts)
	}
	for _, want := range []string{obs.KindSpanEnd, obs.KindHeat, obs.KindTraceEnd} {
		if counts[want] == 0 {
			t.Errorf("stream carried no %q events (saw %v)", want, counts)
		}
	}
}

func TestWatchSSEFormat(t *testing.T) {
	_, ts := newDeterministicServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("default Content-Type = %q, want text/event-stream", ct)
	}
	// Generate one event and read the hello + first frames.
	go http.Get(ts.URL + "/run?experiment=E1")
	sc := bufio.NewScanner(resp.Body)
	var sawHello, sawID bool
	deadline := time.After(10 * time.Second)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for !sawHello || !sawID {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("SSE stream ended early")
			}
			if strings.HasPrefix(line, "event: hello") {
				sawHello = true
			}
			if strings.HasPrefix(line, "id: ") {
				sawID = true
			}
		case <-deadline:
			t.Fatalf("no SSE frames within 10s (hello=%v id=%v)", sawHello, sawID)
		}
	}
}

func TestWatchFilters(t *testing.T) {
	_, ts := newDeterministicServer(t)
	sc, closeWatch := openWatch(t, ts.URL, "?kind=trace-end", nil)
	defer closeWatch()

	http.Get(ts.URL + "/run?scenario=bss-overflow")
	lines := readUntilTraceEnd(t, sc)
	for _, line := range lines {
		var ev obs.BusEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind != obs.KindTraceEnd && ev.Kind != obs.KindHello {
			t.Fatalf("kind filter leaked a %q event: %s", ev.Kind, line)
		}
	}
}

func TestWatchResume(t *testing.T) {
	_, ts := newDeterministicServer(t)

	// First subscriber watches a full run.
	sc, closeWatch := openWatch(t, ts.URL, "", nil)
	http.Get(ts.URL + "/run?scenario=bss-overflow")
	lines := readUntilTraceEnd(t, sc)
	closeWatch()

	// Find the seq halfway through and resume from it: replay must
	// continue exactly at seq+1.
	var mid uint64
	var ev obs.BusEvent
	if err := json.Unmarshal([]byte(lines[len(lines)/2]), &ev); err != nil {
		t.Fatal(err)
	}
	mid = ev.Seq
	if mid == 0 {
		t.Fatalf("mid-stream line had no seq: %s", lines[len(lines)/2])
	}

	h := http.Header{}
	h.Set("Last-Event-ID", fmt.Sprint(mid))
	sc2, closeWatch2 := openWatch(t, ts.URL, "", h)
	defer closeWatch2()
	replayed := readUntilTraceEnd(t, sc2)
	// Line 0 is hello; line 1 must be seq mid+1.
	if len(replayed) < 2 {
		t.Fatalf("resume replayed %d lines", len(replayed))
	}
	if err := json.Unmarshal([]byte(replayed[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != mid+1 {
		t.Fatalf("resume after %d delivered seq %d first, want %d", mid, ev.Seq, mid+1)
	}
}

// TestWatchDeterministicDoubleRun is the acceptance-criteria gate in
// miniature: two fresh -deterministic servers, the same sequential
// request, byte-identical NDJSON streams.
func TestWatchDeterministicDoubleRun(t *testing.T) {
	render := func() []byte {
		_, ts := newDeterministicServer(t)
		sc, closeWatch := openWatch(t, ts.URL, "", nil)
		defer closeWatch()
		resp, err := http.Post(ts.URL+"/run", "application/json",
			strings.NewReader(`{"scenario":"stack-ret","defense":"nx"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return []byte(strings.Join(readUntilTraceEnd(t, sc), "\n"))
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic double-run streams differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestTraceEndpointGolden pins the /trace/{id} JSON shape under the
// virtual clock. Regenerate with: go test ./internal/serve -run Golden -update
func TestTraceEndpointGolden(t *testing.T) {
	_, ts := newDeterministicServer(t)
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/run?scenario=bss-overflow&defense=nx", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, "t-golden")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/trace/t-golden")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/t-golden = %d, want 200", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("/trace/{id} drifted from golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Unknown IDs are a clean 404.
	resp, err = http.Get(ts.URL + "/trace/no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /trace/no-such-trace = %d, want 404", resp.StatusCode)
	}
}

// TestRunWatchRaceStress hammers /run while /watch subscribers attach,
// read, and detach — the HTTP-level half of the race stress (CI runs
// the suite under -race).
func TestRunWatchRaceStress(t *testing.T) {
	srv := NewServer(Config{
		Workers: 4, Queue: 32, CacheSize: 32,
		CacheTTL: time.Minute, Deadline: 10 * time.Second, MaxDeadline: 30 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Service().Drain() })

	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				sc, closeWatch := openWatch(t, ts.URL, "", nil)
				for i := 0; i < 20 && sc.Scan(); i++ {
				}
				closeWatch()
			}
		}()
	}
	scenarios := []string{"bss-overflow", "stack-ret", "heap-overflow"}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := ts.URL + "/run?no_cache=true&scenario=" + scenarios[i%len(scenarios)]
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	// The watch bus health metrics exist and the subscriber gauge has
	// returned to zero.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{"pn_serve_watch_subscribers 0", "pn_build_info", "pn_serve_uptime_seconds"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
