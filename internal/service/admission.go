package service

import (
	"strings"
	"sync"
	"time"
)

// DefaultTenant is the tenant requests fall into when the client sends
// no X-PN-Tenant header.
const DefaultTenant = "default"

// NormalizeTenant maps a raw tenant header value onto a stable tenant
// name: trimmed, lower-cased, capped at 64 bytes, empty → DefaultTenant.
func NormalizeTenant(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return DefaultTenant
	}
	if len(s) > 64 {
		s = s[:64]
	}
	return s
}

// TenantLimits is one tenant's quota override.
type TenantLimits struct {
	// Rate is the sustained admission rate in requests per second.
	Rate float64
	// Burst is the bucket capacity — how far above the sustained rate a
	// tenant may briefly spike.
	Burst float64
	// Weight is the tenant's fair-queueing weight (default 1): a
	// weight-2 tenant drains twice as fast as a weight-1 tenant when
	// both are backlogged in the same lane.
	Weight float64
}

// QuotaConfig tunes per-tenant admission quotas. The zero value
// disables quotas entirely (every TryTake succeeds).
type QuotaConfig struct {
	// Rate/Burst are the default token-bucket parameters applied to any
	// tenant without an explicit override. Rate <= 0 disables quotas.
	Rate  float64
	Burst float64
	// PerTenant overrides Rate/Burst/Weight for named tenants.
	PerTenant map[string]TenantLimits
}

func (c QuotaConfig) withDefaults() QuotaConfig {
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = 2 * c.Rate
	}
	return c
}

// Enabled reports whether quotas are armed at all.
func (c QuotaConfig) Enabled() bool { return c.Rate > 0 }

// WeightFor returns a tenant's fair-queueing weight (default 1).
func (c QuotaConfig) WeightFor(tenant string) float64 {
	if o, ok := c.PerTenant[tenant]; ok && o.Weight > 0 {
		return o.Weight
	}
	return 1
}

// tokenBucket is one tenant's refillable budget. Refill happens lazily
// from the elapsed time on the injected clock, so behavior is
// byte-reproducible under a virtual clock.
type tokenBucket struct {
	tokens float64
	last   time.Time
	rate   float64 // tokens per second
	burst  float64 // capacity
}

func (b *tokenBucket) refill(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// take consumes one token if available; otherwise it reports how long
// until the next token accrues.
func (b *tokenBucket) take(now time.Time) (ok bool, wait time.Duration) {
	b.refill(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := 1 - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}

// put refunds one token (a request cancelled before it consumed any
// work gives its admission back).
func (b *tokenBucket) put() {
	b.tokens++
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// TenantQuotas is the per-tenant token-bucket table. Buckets are
// created lazily, full, on a tenant's first request.
type TenantQuotas struct {
	mu  sync.Mutex
	cfg QuotaConfig
	now func() time.Time
	m   map[string]*tokenBucket
}

// NewTenantQuotas builds the quota table; a nil now selects time.Now.
func NewTenantQuotas(cfg QuotaConfig, now func() time.Time) *TenantQuotas {
	if now == nil {
		now = time.Now
	}
	return &TenantQuotas{cfg: cfg.withDefaults(), now: now, m: make(map[string]*tokenBucket)}
}

// Enabled reports whether the table enforces anything.
func (q *TenantQuotas) Enabled() bool { return q != nil && q.cfg.Enabled() }

func (q *TenantQuotas) bucket(tenant string) *tokenBucket {
	b, ok := q.m[tenant]
	if !ok {
		rate, burst := q.cfg.Rate, q.cfg.Burst
		if o, exists := q.cfg.PerTenant[tenant]; exists {
			if o.Rate > 0 {
				rate = o.Rate
			}
			if o.Burst > 0 {
				burst = o.Burst
			} else if o.Rate > 0 {
				burst = 2 * o.Rate
			}
		}
		b = &tokenBucket{tokens: burst, last: q.now(), rate: rate, burst: burst}
		q.m[tenant] = b
	}
	return b
}

// TryTake consumes one admission token for tenant. When the bucket is
// empty it refuses and returns the time until the next token — the
// honest Retry-After for a quota rejection.
func (q *TenantQuotas) TryTake(tenant string) (ok bool, wait time.Duration) {
	if !q.Enabled() {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bucket(tenant).take(q.now())
}

// Refund returns one token to tenant (cancelled-while-queued requests
// never consumed compute, so their admission is given back).
func (q *TenantQuotas) Refund(tenant string) {
	if !q.Enabled() {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.bucket(tenant).put()
}

// Tokens returns tenant's current balance (for tests and gauges).
func (q *TenantQuotas) Tokens(tenant string) float64 {
	if !q.Enabled() {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.bucket(tenant)
	b.refill(q.now())
	return b.tokens
}

// WeightFor returns tenant's fair-queueing weight.
func (q *TenantQuotas) WeightFor(tenant string) float64 {
	if q == nil {
		return 1
	}
	return q.cfg.WeightFor(tenant)
}
