package service

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// admissionClock is a hand-cranked clock for deterministic quota and
// queue tests.
type admissionClock struct {
	mu sync.Mutex
	t  time.Time
}

func newAdmissionClock() *admissionClock {
	return &admissionClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *admissionClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *admissionClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestNormalizeTenant(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", DefaultTenant},
		{"   ", DefaultTenant},
		{"Acme", "acme"},
		{"  TeamRed  ", "teamred"},
		{strings.Repeat("x", 100), strings.Repeat("x", 64)},
	}
	for _, c := range cases {
		if got := NormalizeTenant(c.in); got != c.want {
			t.Errorf("NormalizeTenant(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestQuotaTakeRefillRefund pins the token-bucket arithmetic on a
// virtual clock: burst bounds the spike, rate refills lazily, refunds
// restore but never exceed burst, and the refusal wait is the honest
// time to the next token.
func TestQuotaTakeRefillRefund(t *testing.T) {
	clk := newAdmissionClock()
	q := NewTenantQuotas(QuotaConfig{Rate: 10, Burst: 2}, clk.Now)

	for i := 0; i < 2; i++ {
		if ok, _ := q.TryTake("acme"); !ok {
			t.Fatalf("take %d refused with a full bucket", i)
		}
	}
	ok, wait := q.TryTake("acme")
	if ok {
		t.Fatal("take succeeded on an empty bucket")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("empty-bucket wait = %v, want 100ms (1 token at 10/s)", wait)
	}

	clk.Advance(100 * time.Millisecond)
	if ok, _ := q.TryTake("acme"); !ok {
		t.Fatal("take refused after exactly one token refilled")
	}

	// Refund restores a token; refunding past burst is capped.
	q.Refund("acme")
	q.Refund("acme")
	q.Refund("acme")
	if got := q.Tokens("acme"); got != 2 {
		t.Fatalf("tokens after over-refund = %g, want burst cap 2", got)
	}
}

func TestQuotaPerTenantOverride(t *testing.T) {
	clk := newAdmissionClock()
	cfg := QuotaConfig{
		Rate:  1,
		Burst: 1,
		PerTenant: map[string]TenantLimits{
			"gold": {Rate: 100, Burst: 5, Weight: 4},
		},
	}
	q := NewTenantQuotas(cfg, clk.Now)
	for i := 0; i < 5; i++ {
		if ok, _ := q.TryTake("gold"); !ok {
			t.Fatalf("gold take %d refused below its burst of 5", i)
		}
	}
	if ok, _ := q.TryTake("gold"); ok {
		t.Fatal("gold take succeeded past its burst")
	}
	if ok, _ := q.TryTake("pleb"); !ok {
		t.Fatal("default-tenant take refused with a full bucket")
	}
	if ok, _ := q.TryTake("pleb"); ok {
		t.Fatal("default-tenant take succeeded past burst 1")
	}
	if w := q.WeightFor("gold"); w != 4 {
		t.Fatalf("gold weight = %g, want 4", w)
	}
	if w := q.WeightFor("pleb"); w != 1 {
		t.Fatalf("default weight = %g, want 1", w)
	}
}

// TestQuotaDisabledAdmitsEverything: the zero config is a no-op table.
func TestQuotaDisabledAdmitsEverything(t *testing.T) {
	q := NewTenantQuotas(QuotaConfig{}, nil)
	for i := 0; i < 1000; i++ {
		if ok, _ := q.TryTake("anyone"); !ok {
			t.Fatal("disabled quotas refused an admission")
		}
	}
}

func TestQuotaBurstDefaultsToTwiceRate(t *testing.T) {
	clk := newAdmissionClock()
	q := NewTenantQuotas(QuotaConfig{Rate: 5}, clk.Now)
	if got := q.Tokens("t"); got != 10 {
		t.Fatalf("initial tokens = %g, want default burst 2*rate = 10", got)
	}
}
