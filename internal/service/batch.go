package service

import (
	"context"
	"sync"

	"repro/internal/mem"
)

// MaxBatchSize bounds one /runbatch admission. Batches are a fairness
// hazard (one call can occupy many queue slots); the bound keeps a
// single client from monopolising a lane.
const MaxBatchSize = 64

// BatchOutcome is one request's result within a batch, in request
// order. Exactly one of Result/Err is meaningful.
type BatchOutcome struct {
	Result *Result
	Cache  string
	Err    error
}

// HandleBatch admits every request in one call and serves them
// concurrently through the normal per-request path (scheduler lanes,
// deadlines, cache, shedding all apply per item). Before dispatch it
// resolves the batch's distinct image configurations once and prewarms
// the template pool for them, so the batch shares one template lookup
// instead of racing N cold constructions. Outcomes are returned in
// request order; a failed item never fails its siblings.
func (s *Service) HandleBatch(ctx context.Context, reqs []Request) []BatchOutcome {
	out := make([]BatchOutcome, len(reqs))
	if len(reqs) == 0 {
		return out
	}

	if s.pool != nil {
		// One template lookup for the whole batch: collect the distinct
		// image configurations the requests will construct and prewarm
		// them while still on the caller's goroutine.
		seen := map[mem.ImageConfig]bool{}
		var cfgs []mem.ImageConfig
		for _, r := range reqs {
			n, err := normalize(r)
			if err != nil || n.kind != "scenario" {
				continue
			}
			mo := n.defCfg.MachineOptions()
			icfg := mo.Image
			icfg.ExecStack = mo.ExecStack
			if !seen[icfg] {
				seen[icfg] = true
				cfgs = append(cfgs, icfg)
			}
		}
		s.pool.Prewarm(cfgs...)
	}

	var wg sync.WaitGroup
	wg.Add(len(reqs))
	for i, r := range reqs {
		go func(i int, r Request) {
			defer wg.Done()
			res, tok, err := s.Handle(ctx, r)
			out[i] = BatchOutcome{Result: res, Cache: tok, Err: err}
		}(i, r)
	}
	wg.Wait()
	return out
}
