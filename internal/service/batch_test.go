package service

import (
	"context"
	"testing"

	"repro/internal/obs"
)

func TestHandleBatchOrderAndIsolation(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64, CacheCapacity: 64, Registry: obs.NewRegistry()})
	defer s.Drain()

	reqs := []Request{
		{Experiment: "E1"},
		{Scenario: "bss-overflow"},
		{Experiment: "nope"},       // fails alone
		{Scenario: "bss-overflow"}, // duplicate: coalesced or hit
	}
	out := s.HandleBatch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(reqs))
	}
	if out[0].Err != nil || out[0].Result == nil || out[0].Result.ID != "E1" {
		t.Fatalf("outcome 0 = %+v", out[0])
	}
	if out[1].Err != nil || out[1].Result.ID != "bss-overflow" {
		t.Fatalf("outcome 1 = %+v", out[1])
	}
	if out[2].Err == nil {
		t.Fatal("outcome 2: unknown experiment must fail its own slot")
	}
	if out[3].Err != nil || out[3].Result.Key != out[1].Result.Key {
		t.Fatalf("outcome 3 = %+v, want same content key as outcome 1", out[3])
	}

	// The batch prewarmed the scenario's image configuration, so the
	// pool served its construction as a hit.
	st := s.Pool().Stats()
	if st.Misses != 0 {
		t.Fatalf("pool stats = %+v, want 0 misses (batch prewarms)", st)
	}
	if st.Hits == 0 {
		t.Fatalf("pool stats = %+v, want the scenario construction to hit a template", st)
	}
}

func TestHandleBatchEmpty(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheCapacity: 4, Registry: obs.NewRegistry()})
	defer s.Drain()
	if out := s.HandleBatch(context.Background(), nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d outcomes", len(out))
	}
}
