package service

import (
	"sync"
	"time"

	"repro/internal/resilience"
)

// BreakerConfig tunes the per-tenant, per-scenario-class circuit
// breakers. The zero value disables them.
type BreakerConfig struct {
	// Threshold opens a (tenant, class) breaker after this many
	// consecutive execution failures (panics, chaos-fault deaths,
	// timeouts). 0 disables.
	Threshold int
	// Cooldown is how long an open breaker fast-fails before admitting
	// a half-open probe (default 2s).
	Cooldown time.Duration
	// OnEvent, when non-nil, observes breaker lifecycle events
	// ("open", "close", "probe") — the metrics seam.
	OnEvent func(event, tenant, class string)
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold > 0 && c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// breakerSet holds one resilience.Breaker per (tenant, scenario
// class): a scenario that repeatedly panics or dies to its chaos
// overlay gets fast-failed for that tenant only — other tenants, and
// the same tenant's healthy scenario classes, are untouched.
type breakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	now func() time.Time
	m   map[breakerKey]*resilience.Breaker
}

type breakerKey struct{ tenant, class string }

func newBreakerSet(cfg BreakerConfig, now func() time.Time) *breakerSet {
	if now == nil {
		now = time.Now
	}
	return &breakerSet{cfg: cfg.withDefaults(), now: now, m: make(map[breakerKey]*resilience.Breaker)}
}

func (bs *breakerSet) enabled() bool { return bs != nil && bs.cfg.Threshold > 0 }

func (bs *breakerSet) breaker(tenant, class string) *resilience.Breaker {
	key := breakerKey{tenant, class}
	b, ok := bs.m[key]
	if !ok {
		b = resilience.NewBreaker(bs.cfg.Threshold, bs.cfg.Cooldown, bs.now)
		bs.m[key] = b
	}
	return b
}

// allow reports whether (tenant, class) may execute; when refused it
// also returns the remaining cooldown for the Retry-After hint.
func (bs *breakerSet) allow(tenant, class string) (bool, time.Duration) {
	if !bs.enabled() {
		return true, 0
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.breaker(tenant, class)
	wasOpen := b.Open()
	if b.Allow() {
		if wasOpen && bs.cfg.OnEvent != nil {
			bs.cfg.OnEvent("probe", tenant, class)
		}
		return true, 0
	}
	rem := b.RemainingCooldown()
	if rem <= 0 {
		rem = bs.cfg.Cooldown
	}
	return false, rem
}

// success records a clean execution for (tenant, class).
func (bs *breakerSet) success(tenant, class string) {
	if !bs.enabled() {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.breaker(tenant, class)
	wasOpen := b.Open()
	b.Success()
	if wasOpen && bs.cfg.OnEvent != nil {
		bs.cfg.OnEvent("close", tenant, class)
	}
}

// failure records a dead execution for (tenant, class).
func (bs *breakerSet) failure(tenant, class string) {
	if !bs.enabled() {
		return
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.breaker(tenant, class)
	wasOpen := b.Open()
	b.Failure()
	if !wasOpen && b.Open() && bs.cfg.OnEvent != nil {
		bs.cfg.OnEvent("open", tenant, class)
	}
}

// open reports whether (tenant, class) is currently fast-failing.
func (bs *breakerSet) open(tenant, class string) bool {
	if !bs.enabled() {
		return false
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.breaker(tenant, class).Open()
}
