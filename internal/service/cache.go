package service

import (
	"container/list"
	"context"
	"time"
)

// Cache event tokens reported through the OnEvent seam and echoed in
// responses. They are stable wire/metric values.
const (
	CacheHit       = "hit"       // served from the store
	CacheMiss      = "miss"      // executed; result stored
	CacheCoalesced = "coalesced" // joined an identical in-flight execution
	CacheBypass    = "bypass"    // NoCache request; executed, store refreshed
	CacheCloned    = "cloned"    // miss filled from a cluster peer's cache, not executed
	CacheEvict     = "evict"     // LRU capacity eviction
	CacheExpire    = "expire"    // TTL expiry observed on access
)

// CacheConfig tunes the result cache. The zero value selects 256
// entries, no TTL, and the wall clock.
type CacheConfig struct {
	// Capacity bounds the number of stored results (default 256).
	Capacity int
	// TTL expires entries this long after they were stored (0 = never).
	TTL time.Duration
	// Now is the clock, injectable for tests (nil = time.Now).
	Now func() time.Time
	// OnEvent receives one call per cache event with a Cache* token —
	// the metrics seam. It runs under the cache lock: keep it cheap and
	// never call back into the cache.
	OnEvent func(event string)
}

// Cache is a content-addressed result store: bounded LRU with optional
// TTL, plus singleflight collapsing so N concurrent requests for the
// same key cost one execution. Safe for concurrent use. Results are
// treated as immutable once stored — callers must not mutate them.
type Cache struct {
	cfg CacheConfig

	mu      chMutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	flights map[string]*flight
}

// chMutex is a channel-based mutex so cache internals can also be
// released while waiting on a flight without juggling sync.Cond.
type chMutex chan struct{}

func (m chMutex) lock()   { m <- struct{}{} }
func (m chMutex) unlock() { <-m }

type entry struct {
	key    string
	res    *Result
	stored time.Time
}

// flight is one in-progress execution other callers can join.
type flight struct {
	done chan struct{} // closed when the leader finishes
	res  *Result
	err  error
}

// NewCache builds a cache.
func NewCache(cfg CacheConfig) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache{
		cfg:     cfg,
		mu:      make(chMutex, 1),
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

func (c *Cache) event(tok string) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(tok)
	}
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.lock()
	defer c.mu.unlock()
	return c.lru.Len()
}

// Keys returns the stored keys from most to least recently used — the
// eviction order, exposed for tests.
func (c *Cache) Keys() []string {
	c.mu.lock()
	defer c.mu.unlock()
	out := make([]string, 0, c.lru.Len())
	for e := c.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*entry).key)
	}
	return out
}

// lookupLocked returns a fresh entry's result, expiring stale ones.
func (c *Cache) lookupLocked(key string) (*Result, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*entry)
	if c.cfg.TTL > 0 && c.cfg.Now().Sub(ent.stored) >= c.cfg.TTL {
		c.removeLocked(el)
		c.event(CacheExpire)
		return nil, false
	}
	c.lru.MoveToFront(el)
	return ent.res, true
}

func (c *Cache) removeLocked(el *list.Element) {
	c.lru.Remove(el)
	delete(c.entries, el.Value.(*entry).key)
}

// storeLocked inserts (or refreshes) key and evicts past capacity.
func (c *Cache) storeLocked(key string, res *Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).res = res
		el.Value.(*entry).stored = c.cfg.Now()
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry{key: key, res: res, stored: c.cfg.Now()})
	for c.lru.Len() > c.cfg.Capacity {
		c.removeLocked(c.lru.Back())
		c.event(CacheEvict)
	}
}

// Get returns the stored result for key, if fresh.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.lock()
	defer c.mu.unlock()
	return c.lookupLocked(key)
}

// Put stores res under key unconditionally.
func (c *Cache) Put(key string, res *Result) {
	c.mu.lock()
	defer c.mu.unlock()
	c.storeLocked(key, res)
}

// Do returns the result for key, executing miss at most once across
// all concurrent callers: the first miss becomes the flight leader and
// runs miss(); callers arriving while it is in flight join the flight
// instead of executing. The returned token is one of CacheHit,
// CacheMiss, or CacheCoalesced.
//
// ctx bounds only the caller's wait: a follower whose context expires
// unblocks with ctx.Err() while the leader's execution (governed by
// its own context) continues for the callers still waiting.
func (c *Cache) Do(ctx context.Context, key string, miss func() (*Result, error)) (*Result, string, error) {
	c.mu.lock()
	if res, ok := c.lookupLocked(key); ok {
		c.event(CacheHit)
		c.mu.unlock()
		return res, CacheHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.event(CacheCoalesced)
		c.mu.unlock()
		select {
		case <-f.done:
			return f.res, CacheCoalesced, f.err
		case <-ctx.Done():
			return nil, CacheCoalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.event(CacheMiss)
	c.mu.unlock()

	f.res, f.err = miss()

	c.mu.lock()
	delete(c.flights, key)
	if f.err == nil && f.res != nil {
		c.storeLocked(key, f.res)
	}
	c.mu.unlock()
	close(f.done)
	return f.res, CacheMiss, f.err
}
