package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func res(key string) *Result { return &Result{Key: key, Status: "ok"} }

// TestSingleflightCollapsesConcurrentMisses is the satellite contract:
// N identical concurrent requests cost exactly one execution.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	c := NewCache(CacheConfig{Capacity: 8})
	const n = 50
	var executions atomic.Int32
	var wg sync.WaitGroup
	release := make(chan struct{})
	results := make([]*Result, n)
	tokens := make([]string, n)

	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			r, tok, err := c.Do(context.Background(), "k", func() (*Result, error) {
				executions.Add(1)
				<-release // hold the flight open until every goroutine had a chance to join
				return res("k"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], tokens[i] = r, tok
		}(i)
	}
	// Give followers time to join the flight, then let the leader finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := executions.Load(); got != 1 {
		t.Fatalf("executions = %d, want exactly 1", got)
	}
	var misses, joined int
	for i := range results {
		if results[i] == nil || results[i].Key != "k" {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		switch tokens[i] {
		case CacheMiss:
			misses++
		case CacheCoalesced, CacheHit:
			joined++
		default:
			t.Fatalf("caller %d got token %q", i, tokens[i])
		}
	}
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (joined %d)", misses, joined)
	}
}

// TestSingleflightErrorNotCached: a failed execution is returned to the
// whole flight but never stored.
func TestSingleflightErrorNotCached(t *testing.T) {
	c := NewCache(CacheConfig{})
	boom := fmt.Errorf("boom")
	_, tok, err := c.Do(context.Background(), "k", func() (*Result, error) { return nil, boom })
	if err != boom || tok != CacheMiss {
		t.Fatalf("got (%v, %q), want (boom, miss)", err, tok)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("error result was cached")
	}
}

// TestFollowerContextUnblocks: a follower whose context ends stops
// waiting; the leader's execution is unaffected.
func TestFollowerContextUnblocks(t *testing.T) {
	c := NewCache(CacheConfig{})
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (*Result, error) {
		close(started)
		<-release
		return res("k"), nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func() (*Result, error) {
			t.Error("follower executed miss despite in-flight leader")
			return nil, nil
		})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("follower did not unblock on context cancellation")
	}
	close(release)
}

// TestLRUEvictionOrder: least-recently-used entries leave first, and
// touching an entry protects it.
func TestLRUEvictionOrder(t *testing.T) {
	events := map[string]int{}
	c := NewCache(CacheConfig{Capacity: 3, OnEvent: func(e string) { events[e]++ }})
	c.Put("a", res("a"))
	c.Put("b", res("b"))
	c.Put("c", res("c"))
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	c.Put("d", res("d")) // evicts b

	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; want it evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want it retained", k)
		}
	}
	if events[CacheEvict] != 1 {
		t.Fatalf("evict events = %d, want 1", events[CacheEvict])
	}
	// Most-recent-first order after the gets above: d, c, a was touched
	// last... verify exact order via Keys.
	got := c.Keys()
	want := []string{"d", "c", "a"}
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

// TestTTLExpiry: entries expire TTL after storage, lazily on access.
func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	events := map[string]int{}
	c := NewCache(CacheConfig{
		TTL:     time.Minute,
		Now:     func() time.Time { return now },
		OnEvent: func(e string) { events[e]++ },
	})
	c.Put("k", res("k"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry expired before TTL")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived past TTL")
	}
	if events[CacheExpire] != 1 {
		t.Fatalf("expire events = %d, want 1", events[CacheExpire])
	}
	if c.Len() != 0 {
		t.Fatalf("Len() = %d after expiry, want 0", c.Len())
	}
}

// TestChaosSeedsNeverShareKeys is the satellite contract: two requests
// differing only in chaos seed have distinct content addresses, while
// chaos-free requests normalize inert seeds away.
func TestChaosSeedsNeverShareKeys(t *testing.T) {
	k1, err := Key(Request{Scenario: "bss-overflow", ChaosProb: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(Request{Scenario: "bss-overflow", ChaosProb: 0.01, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("different chaos seeds produced the same cache key")
	}
	// Same seed, same config: stable address.
	k1b, err := Key(Request{Scenario: "bss-overflow", ChaosProb: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k1b {
		t.Fatal("identical requests produced different cache keys")
	}
	// Without injection the seed is inert and must not fragment the cache.
	q1, err := Key(Request{Scenario: "bss-overflow", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Key(Request{Scenario: "bss-overflow", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("inert seeds fragmented the chaos-free cache key")
	}
	// Different probabilities are different workloads.
	p, err := Key(Request{Scenario: "bss-overflow", ChaosProb: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p == k1 {
		t.Fatal("different chaos probabilities shared a cache key")
	}
}
