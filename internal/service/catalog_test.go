package service

import (
	"testing"

	"repro/internal/defense"
)

// TestEveryCatalogDefenseIsServable is the service half of the
// catalogue drift guard: each defense.Catalog() entry must be accepted
// by request normalization under its wire name, echo back normalized,
// and address a distinct cache entry. A defense added to the catalogue
// but rejected here would be runnable in-process yet unreachable over
// the API.
func TestEveryCatalogDefenseIsServable(t *testing.T) {
	keys := map[string]string{}
	for _, c := range defense.Catalog() {
		req := Request{Scenario: "construct-overflow", Defense: c.Name}
		n, err := normalize(req)
		if err != nil {
			t.Errorf("defense %q rejected by normalize: %v", c.Name, err)
			continue
		}
		if n.Defense != c.Name {
			t.Errorf("defense %q echoed back as %q", c.Name, n.Defense)
		}
		if prev, dup := keys[n.key]; dup {
			t.Errorf("defenses %q and %q share cache key %s", prev, c.Name, n.key)
		}
		keys[n.key] = c.Name
	}
	// The default resolves to the catalogue's no-defense entry.
	n, err := normalize(Request{Scenario: "construct-overflow"})
	if err != nil {
		t.Fatal(err)
	}
	if n.Defense != defense.None.Name {
		t.Errorf("empty defense normalized to %q, want %q", n.Defense, defense.None.Name)
	}
}
