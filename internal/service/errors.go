package service

import (
	"fmt"

	"repro/internal/resilience"
)

// BadRequest is a request the service refuses to schedule: unknown
// experiment/scenario/defense/model, contradictory fields, malformed
// knobs. It maps to HTTP 400.
type BadRequest struct {
	Reason string
}

func (e *BadRequest) Error() string { return "service: bad request: " + e.Reason }

func badRequestf(format string, args ...any) *BadRequest {
	return &BadRequest{Reason: fmt.Sprintf(format, args...)}
}

// Rejection reasons: the machine-readable enum clients (and pnload)
// use to distinguish shed causes.
const (
	// ReasonQuota: the tenant's token bucket is empty (429).
	ReasonQuota = "quota"
	// ReasonQueueFull: the priority lane is at capacity (429).
	ReasonQueueFull = "queue_full"
	// ReasonLimiter: the adaptive concurrency limiter is at its
	// latency-steered limit (429).
	ReasonLimiter = "limiter"
	// ReasonBreakerOpen: this tenant's scenario class is fast-failing
	// after repeated execution deaths (503).
	ReasonBreakerOpen = "breaker_open"
	// ReasonDraining: the server is shutting down (503).
	ReasonDraining = "draining"
)

// RejectionReasons enumerates every Reason value, for table-driven
// tests and client generators.
var RejectionReasons = []string{ReasonQuota, ReasonQueueFull, ReasonLimiter, ReasonBreakerOpen, ReasonDraining}

// reasonCode maps a rejection reason onto its HTTP-style status:
// overload reasons are 429 (the client should slow down), while
// unavailability reasons are 503 (the server, or this tenant's class,
// is refusing service for now).
func reasonCode(reason string) int {
	switch reason {
	case ReasonBreakerOpen, ReasonDraining:
		return 503
	default:
		return 429
	}
}

// Rejection is a structured load-shedding decision: the service chose
// not to queue the request rather than let the queue grow without
// bound. It maps to HTTP 429 (overload shedding: quota, queue_full,
// limiter) or 503 (breaker_open, draining) and carries enough state
// for the client to back off intelligently.
type Rejection struct {
	// Code is the HTTP-style status the rejection maps to (see
	// reasonCode).
	Code int `json:"code"`
	// Reason is one of the Reason* enum values.
	Reason string `json:"reason"`
	// Tenant is the (normalized) tenant the decision applied to.
	Tenant string `json:"tenant,omitempty"`
	// Lane is the priority lane the request was bound for.
	Lane string `json:"lane"`
	// QueueLen/QueueCap describe the lane at rejection time.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// RetryAfterMS is the server's backoff hint, computed from the
	// measured drain rate (limiter/queue_full), the tenant's token
	// refill schedule (quota), or the breaker cooldown — not a
	// constant.
	RetryAfterMS int64 `json:"retry_after_ms"`
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("service: %s (tenant %s, lane %s, queue %d/%d, retry after %dms)",
		r.Reason, r.Tenant, r.Lane, r.QueueLen, r.QueueCap, r.RetryAfterMS)
}

// ExecError is a request whose supervised execution died: the scenario
// panicked (a simulated SIGSEGV escaping the harness) or returned an
// infrastructure error. The request degrades to a structured 500; the
// process and every other in-flight request carry on.
type ExecError struct {
	ID string
	// Status is the supervisor's verdict (failed or timeout).
	Status resilience.Status
	// Crashes are the structured records of every attempt.
	Crashes []resilience.CrashRecord
	Message string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("service: execution of %s %s: %s", e.ID, e.Status, e.Message)
}
