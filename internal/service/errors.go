package service

import (
	"fmt"

	"repro/internal/resilience"
)

// BadRequest is a request the service refuses to schedule: unknown
// experiment/scenario/defense/model, contradictory fields, malformed
// knobs. It maps to HTTP 400.
type BadRequest struct {
	Reason string
}

func (e *BadRequest) Error() string { return "service: bad request: " + e.Reason }

func badRequestf(format string, args ...any) *BadRequest {
	return &BadRequest{Reason: fmt.Sprintf(format, args...)}
}

// Rejection is a structured load-shedding decision: the service chose
// not to queue the request rather than let the queue grow without
// bound. It maps to HTTP 429 (queue full) or 503 (draining) and
// carries enough state for the client to back off intelligently.
type Rejection struct {
	// Code is the HTTP-style status the rejection maps to: 429 for
	// queue-full shedding, 503 for drain.
	Code int `json:"code"`
	// Reason is a stable machine-readable token: "queue-full" or
	// "draining".
	Reason string `json:"reason"`
	// Lane is the priority lane the request was bound for.
	Lane string `json:"lane"`
	// QueueLen/QueueCap describe the lane at rejection time.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// RetryAfterMS is the server's backoff hint.
	RetryAfterMS int64 `json:"retry_after_ms"`
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("service: %s (lane %s, queue %d/%d, retry after %dms)",
		r.Reason, r.Lane, r.QueueLen, r.QueueCap, r.RetryAfterMS)
}

// ExecError is a request whose supervised execution died: the scenario
// panicked (a simulated SIGSEGV escaping the harness) or returned an
// infrastructure error. The request degrades to a structured 500; the
// process and every other in-flight request carry on.
type ExecError struct {
	ID string
	// Status is the supervisor's verdict (failed or timeout).
	Status resilience.Status
	// Crashes are the structured records of every attempt.
	Crashes []resilience.CrashRecord
	Message string
}

func (e *ExecError) Error() string {
	return fmt.Sprintf("service: execution of %s %s: %s", e.ID, e.Status, e.Message)
}
