package service

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRejectionReasons is the table-driven contract over the full
// reason enum: each reason maps to its HTTP-style code, serializes
// machine-readably, and renders a readable error string.
func TestRejectionReasons(t *testing.T) {
	wantCode := map[string]int{
		ReasonQuota:       429,
		ReasonQueueFull:   429,
		ReasonLimiter:     429,
		ReasonBreakerOpen: 503,
		ReasonDraining:    503,
	}
	if len(wantCode) != len(RejectionReasons) {
		t.Fatalf("test table covers %d reasons, enum has %d", len(wantCode), len(RejectionReasons))
	}
	for _, reason := range RejectionReasons {
		t.Run(reason, func(t *testing.T) {
			code, ok := wantCode[reason]
			if !ok {
				t.Fatalf("reason %q missing from the expectation table", reason)
			}
			if got := reasonCode(reason); got != code {
				t.Fatalf("reasonCode(%q) = %d, want %d", reason, got, code)
			}
			rej := &Rejection{
				Code:         reasonCode(reason),
				Reason:       reason,
				Tenant:       "acme",
				Lane:         "normal",
				QueueLen:     3,
				QueueCap:     8,
				RetryAfterMS: 125,
			}
			b, err := json.Marshal(rej)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var decoded map[string]any
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if decoded["reason"] != reason {
				t.Fatalf("JSON reason = %v, want %q", decoded["reason"], reason)
			}
			if decoded["tenant"] != "acme" {
				t.Fatalf("JSON tenant = %v, want acme", decoded["tenant"])
			}
			if decoded["retry_after_ms"] != float64(125) {
				t.Fatalf("JSON retry_after_ms = %v, want 125", decoded["retry_after_ms"])
			}
			msg := rej.Error()
			for _, frag := range []string{reason, "acme", "normal", "125ms"} {
				if !strings.Contains(msg, frag) {
					t.Fatalf("Error() = %q, missing %q", msg, frag)
				}
			}
		})
	}
}

// TestRejectionTenantOmittedWhenEmpty: pre-tenant clients see the same
// JSON shape they always did.
func TestRejectionTenantOmittedWhenEmpty(t *testing.T) {
	b, err := json.Marshal(&Rejection{Code: 429, Reason: ReasonQueueFull, Lane: "low"})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(b), "tenant") {
		t.Fatalf("empty tenant serialized: %s", b)
	}
}
