package service

import (
	"container/list"
	"sync"
	"time"
)

// fqState is an entry's lifecycle inside the fair queue.
type fqState int

const (
	fqQueued  fqState = iota // waiting in its tenant queue
	fqClaimed                // handed to a worker; the worker owns completion
	fqRemoved                // cancelled while queued; slot and tokens refunded
)

// fqEntry is one queued request plus the bookkeeping the fair queue
// needs to serve, age, or surgically remove it.
type fqEntry struct {
	t        *task
	tenant   string
	lane     Priority
	seq      uint64    // global admission order, for deterministic aging
	enq      time.Time // admission time on the queue's clock
	state    fqState
	elem     *list.Element
	promoted bool // served via aging promotion rather than lane order
}

// fqTenant is one tenant's FIFO within a lane, with its deficit
// round-robin state.
type fqTenant struct {
	name    string
	q       *list.List // of *fqEntry
	deficit float64
	weight  float64
}

// fqLane is one priority lane: a ring of active (backlogged) tenants
// drained by deficit round-robin.
type fqLane struct {
	tenants map[string]*fqTenant
	ring    []*fqTenant // active tenants, rotation order
	rr      int         // ring cursor
	size    int
}

// pushResult is the admission verdict for one push.
type pushResult int

const (
	pushOK pushResult = iota
	pushFull
	pushClosed
)

// fairQueue is the scheduler's indexed multi-queue: per lane, per
// tenant FIFOs drained by deficit round-robin (weighted fair queueing
// with unit-cost tasks), with priority aging promoting long-waiting
// work from any lane ahead of strict priority order so nothing
// starves. Entries are individually removable, so a request cancelled
// while queued releases its slot immediately instead of being lazily
// skipped by a worker.
type fairQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	lanes     [laneCount]fqLane
	capacity  int           // per-lane bound
	aging     time.Duration // wait at which any entry outranks lane order (0 = off)
	weightFor func(tenant string) float64
	now       func() time.Time
	seq       uint64
	total     int
	closed    bool

	promotions uint64              // entries served via aging
	onPromote  func(tenant string) // metrics seam; called with fq.mu held
}

const laneCount = 3

func newFairQueue(capacity int, aging time.Duration, weightFor func(string) float64, now func() time.Time) *fairQueue {
	if now == nil {
		now = time.Now
	}
	if weightFor == nil {
		weightFor = func(string) float64 { return 1 }
	}
	fq := &fairQueue{capacity: capacity, aging: aging, weightFor: weightFor, now: now}
	fq.cond = sync.NewCond(&fq.mu)
	for i := range fq.lanes {
		fq.lanes[i].tenants = make(map[string]*fqTenant)
	}
	return fq
}

// push admits t into its tenant's FIFO in lane. A full lane or a
// closed queue refuses; the caller maps that onto a Rejection.
func (fq *fairQueue) push(t *task, tenant string, lane Priority) (*fqEntry, pushResult) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.closed {
		return nil, pushClosed
	}
	l := &fq.lanes[lane]
	if l.size >= fq.capacity {
		return nil, pushFull
	}
	tq, ok := l.tenants[tenant]
	if !ok {
		w := fq.weightFor(tenant)
		if w <= 0 {
			w = 1 // a non-positive weight would stall the DRR sweep
		}
		tq = &fqTenant{name: tenant, q: list.New(), weight: w}
		l.tenants[tenant] = tq
	}
	if tq.q.Len() == 0 {
		// (Re)activation: join the rotation with a fresh deficit, the
		// standard DRR treatment of a newly backlogged flow.
		tq.deficit = 0
		l.ring = append(l.ring, tq)
	}
	fq.seq++
	e := &fqEntry{t: t, tenant: tenant, lane: lane, seq: fq.seq, enq: fq.now()}
	e.elem = tq.q.PushBack(e)
	l.size++
	fq.total++
	fq.cond.Signal()
	return e, pushOK
}

// pop blocks until an entry is available (or the queue is closed and
// empty, returning nil). Workers call this.
func (fq *fairQueue) pop() *fqEntry {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		if e := fq.tryPopLocked(); e != nil {
			return e
		}
		if fq.closed {
			return nil
		}
		fq.cond.Wait()
	}
}

// tryPop is the non-blocking variant (the deterministic soak drives
// the queue synchronously with it).
func (fq *fairQueue) tryPop() *fqEntry {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.tryPopLocked()
}

func (fq *fairQueue) tryPopLocked() *fqEntry {
	if fq.total == 0 {
		return nil
	}
	now := fq.now()
	// Priority aging: any entry that has waited past the threshold
	// outranks lane order — oldest first, so low-priority work admitted
	// long ago cannot be starved by a steady high-priority stream. Only
	// tenant-queue heads can be oldest (FIFOs), so the scan is
	// O(active tenants).
	if fq.aging > 0 {
		var aged *fqEntry
		for li := range fq.lanes {
			for _, tq := range fq.lanes[li].ring {
				head := tq.q.Front().Value.(*fqEntry)
				if now.Sub(head.enq) >= fq.aging && (aged == nil || head.seq < aged.seq) {
					aged = head
				}
			}
		}
		if aged != nil {
			aged.promoted = true
			fq.promotions++
			if fq.onPromote != nil {
				fq.onPromote(aged.tenant)
			}
			fq.serveLocked(aged)
			return aged
		}
	}
	// Strict priority across lanes; weighted deficit round-robin across
	// tenants inside the chosen lane. Each visit tops a flow's deficit up
	// by its weight at most once; when the deficit drops below one
	// task-cost (or the flow empties) its turn is over and the cursor
	// advances, so a weight-w tenant gets ~w services per rotation.
	for li := range fq.lanes {
		l := &fq.lanes[li]
		if l.size == 0 {
			continue
		}
		for {
			tq := l.ring[l.rr]
			if tq.deficit < 1 {
				tq.deficit += tq.weight
			}
			if tq.deficit < 1 {
				// Fractional weight still accruing: pass the turn.
				l.rr = (l.rr + 1) % len(l.ring)
				continue
			}
			e := tq.q.Front().Value.(*fqEntry)
			tq.deficit--
			fq.serveLocked(e) // may deactivate tq, splicing the ring
			if len(l.ring) > 0 {
				if tq.q.Len() > 0 && tq.deficit < 1 {
					// Turn exhausted with backlog remaining: move on.
					// (Deactivation already advanced the cursor in effect.)
					l.rr = (l.rr + 1) % len(l.ring)
				}
				if l.rr >= len(l.ring) {
					l.rr = 0
				}
			}
			return e
		}
	}
	return nil
}

// serveLocked claims e: unlinks it from its tenant queue and updates
// lane accounting.
func (fq *fairQueue) serveLocked(e *fqEntry) {
	l := &fq.lanes[e.lane]
	tq := l.tenants[e.tenant]
	tq.q.Remove(e.elem)
	e.elem = nil
	e.state = fqClaimed
	l.size--
	fq.total--
	if tq.q.Len() == 0 {
		fq.deactivateLocked(l, tq)
	}
}

// remove cancels a still-queued entry, releasing its slot. It reports
// false when a worker already claimed the entry (or it was removed),
// in which case the worker owns completion and accounting.
func (fq *fairQueue) remove(e *fqEntry) bool {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if e.state != fqQueued {
		return false
	}
	l := &fq.lanes[e.lane]
	tq := l.tenants[e.tenant]
	tq.q.Remove(e.elem)
	e.elem = nil
	e.state = fqRemoved
	l.size--
	fq.total--
	if tq.q.Len() == 0 {
		fq.deactivateLocked(l, tq)
	}
	return true
}

// deactivateLocked drops an emptied tenant queue out of the rotation,
// keeping the cursor stable.
func (fq *fairQueue) deactivateLocked(l *fqLane, tq *fqTenant) {
	for i, cand := range l.ring {
		if cand == tq {
			l.ring = append(l.ring[:i], l.ring[i+1:]...)
			if i < l.rr {
				l.rr--
			}
			break
		}
	}
	if len(l.ring) == 0 {
		l.rr = 0
	} else if l.rr >= len(l.ring) {
		l.rr = 0
	}
	tq.deficit = 0
	delete(l.tenants, tq.name)
}

// close stops admission; queued entries still drain through pop.
func (fq *fairQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.cond.Broadcast()
	fq.mu.Unlock()
}

// len returns one lane's depth.
func (fq *fairQueue) len(lane Priority) int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.lanes[lane].size
}

// tenantLen returns one tenant's depth in a lane.
func (fq *fairQueue) tenantLen(lane Priority, tenant string) int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if tq, ok := fq.lanes[lane].tenants[tenant]; ok {
		return tq.q.Len()
	}
	return 0
}

// Promotions returns how many entries were served via aging.
func (fq *fairQueue) Promotions() uint64 {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.promotions
}
