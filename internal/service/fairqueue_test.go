package service

import (
	"context"
	"testing"
	"time"
)

func fqTask(id string) *task {
	return &task{ctx: context.Background(), adm: Admit{ID: id}, done: make(chan taskResult, 1)}
}

// drainOrder pops until empty and returns task IDs in service order.
func drainOrder(fq *fairQueue) []string {
	var order []string
	for {
		e := fq.tryPop()
		if e == nil {
			return order
		}
		order = append(order, e.t.adm.ID)
	}
}

// TestFairQueueDRRInterleavesTenants: two equally weighted backlogged
// tenants in one lane are served alternately, regardless of arrival
// order — the head-of-line blocking a plain FIFO would exhibit is gone.
func TestFairQueueDRRInterleavesTenants(t *testing.T) {
	clk := newAdmissionClock()
	fq := newFairQueue(16, 0, nil, clk.Now)
	for i := 0; i < 3; i++ {
		fq.push(fqTask("a"), "a", PriorityNormal)
	}
	for i := 0; i < 3; i++ {
		fq.push(fqTask("b"), "b", PriorityNormal)
	}
	got := drainOrder(fq)
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order = %v, want %v", got, want)
		}
	}
}

// TestFairQueueWeightedShare: a weight-2 tenant is served twice per
// rotation against a weight-1 tenant.
func TestFairQueueWeightedShare(t *testing.T) {
	clk := newAdmissionClock()
	weight := func(tenant string) float64 {
		if tenant == "gold" {
			return 2
		}
		return 1
	}
	fq := newFairQueue(16, 0, weight, clk.Now)
	for i := 0; i < 4; i++ {
		fq.push(fqTask("gold"), "gold", PriorityNormal)
		fq.push(fqTask("iron"), "iron", PriorityNormal)
	}
	got := drainOrder(fq)
	// First rotation: gold twice, iron once; repeat.
	want := []string{"gold", "gold", "iron", "gold", "gold", "iron", "iron", "iron"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order = %v, want %v", got, want)
		}
	}
}

// TestFairQueueStrictPriorityAcrossLanes: without aging pressure, the
// high lane always drains before normal, normal before low.
func TestFairQueueStrictPriorityAcrossLanes(t *testing.T) {
	clk := newAdmissionClock()
	fq := newFairQueue(16, 0, nil, clk.Now)
	fq.push(fqTask("low"), "t", PriorityLow)
	fq.push(fqTask("normal"), "t", PriorityNormal)
	fq.push(fqTask("high"), "t", PriorityHigh)
	got := drainOrder(fq)
	want := []string{"high", "normal", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order = %v, want %v", got, want)
		}
	}
}

// TestFairQueueAgingPromotesStarvedWork: a low-priority entry that has
// waited past the threshold outranks a fresh high-priority stream —
// the no-starvation guarantee.
func TestFairQueueAgingPromotesStarvedWork(t *testing.T) {
	clk := newAdmissionClock()
	fq := newFairQueue(16, 100*time.Millisecond, nil, clk.Now)
	fq.push(fqTask("old-low"), "t", PriorityLow)
	clk.Advance(150 * time.Millisecond)
	fq.push(fqTask("fresh-high"), "t", PriorityHigh)

	e := fq.tryPop()
	if e.t.adm.ID != "old-low" {
		t.Fatalf("first served = %s, want the aged low-priority entry", e.t.adm.ID)
	}
	if !e.promoted {
		t.Fatal("aged entry not marked promoted")
	}
	if fq.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", fq.Promotions())
	}
	if e2 := fq.tryPop(); e2.t.adm.ID != "fresh-high" {
		t.Fatalf("second served = %s, want fresh-high", e2.t.adm.ID)
	}
}

// TestFairQueueRemoveReleasesSlot: removing a queued entry frees lane
// capacity immediately and a worker can never claim it afterwards.
func TestFairQueueRemoveReleasesSlot(t *testing.T) {
	clk := newAdmissionClock()
	fq := newFairQueue(1, 0, nil, clk.Now)
	e, res := fq.push(fqTask("victim"), "t", PriorityNormal)
	if res != pushOK {
		t.Fatalf("push = %v, want pushOK", res)
	}
	if _, res := fq.push(fqTask("overflow"), "t", PriorityNormal); res != pushFull {
		t.Fatalf("second push = %v, want pushFull", res)
	}
	if !fq.remove(e) {
		t.Fatal("remove of a queued entry returned false")
	}
	if fq.remove(e) {
		t.Fatal("second remove returned true; entry double-released")
	}
	if fq.len(PriorityNormal) != 0 {
		t.Fatalf("lane depth after remove = %d, want 0", fq.len(PriorityNormal))
	}
	if _, res := fq.push(fqTask("refill"), "t", PriorityNormal); res != pushOK {
		t.Fatalf("push after remove = %v, want pushOK (slot released)", res)
	}
}

// TestFairQueueRemoveAfterClaimFails: once a worker claimed an entry,
// remove reports false — the worker owns completion, preventing
// double-accounting between canceller and worker.
func TestFairQueueRemoveAfterClaimFails(t *testing.T) {
	clk := newAdmissionClock()
	fq := newFairQueue(4, 0, nil, clk.Now)
	e, _ := fq.push(fqTask("x"), "t", PriorityNormal)
	if got := fq.tryPop(); got != e {
		t.Fatal("tryPop returned a different entry")
	}
	if fq.remove(e) {
		t.Fatal("remove of a claimed entry returned true")
	}
}

// TestFairQueueClosedRefusesPush and drains the backlog through pop.
func TestFairQueueClosedDrains(t *testing.T) {
	clk := newAdmissionClock()
	fq := newFairQueue(4, 0, nil, clk.Now)
	fq.push(fqTask("queued"), "t", PriorityNormal)
	fq.close()
	if _, res := fq.push(fqTask("late"), "t", PriorityNormal); res != pushClosed {
		t.Fatalf("push after close = %v, want pushClosed", res)
	}
	if e := fq.pop(); e == nil || e.t.adm.ID != "queued" {
		t.Fatal("close dropped the queued backlog")
	}
	if e := fq.pop(); e != nil {
		t.Fatal("pop on a closed empty queue did not return nil")
	}
}
