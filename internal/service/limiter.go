package service

import (
	"math"
	"sort"
	"sync"
	"time"
)

// LimiterConfig tunes the adaptive concurrency limiter.
type LimiterConfig struct {
	// MinLimit/MaxLimit bound the adaptive limit (defaults 1 and the
	// scheduler's workers + total queue capacity).
	MinLimit int
	MaxLimit int
	// Initial is the starting limit (default MaxLimit: start open and
	// let overload close it).
	Initial int
	// TargetP99 is the latency objective. When a window's observed p99
	// (admission to completion) exceeds it the limit shrinks
	// multiplicatively; otherwise it grows by one (AIMD). <= 0 disables
	// the limiter entirely.
	TargetP99 time.Duration
	// Window is how many completions form one adjustment sample
	// (default 32).
	Window int
	// Backoff is the multiplicative-decrease factor (default 0.75).
	Backoff float64
	// OnAdjust, when non-nil, observes every limit change ("increase"
	// or "decrease") — the metrics seam.
	OnAdjust func(direction string, limit int)
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MinLimit <= 0 {
		c.MinLimit = 1
	}
	if c.MaxLimit < c.MinLimit {
		c.MaxLimit = c.MinLimit
	}
	if c.Initial <= 0 || c.Initial > c.MaxLimit {
		c.Initial = c.MaxLimit
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.75
	}
	return c
}

// drainRateSamples is how many completion timestamps feed the measured
// drain rate behind honest Retry-After hints.
const drainRateSamples = 64

// Limiter is the scheduler's adaptive concurrency limiter: it caps
// outstanding work (queued + executing) at a limit steered by AIMD on
// the observed p99 latency versus a target, so the scheduler sheds
// load *before* the queues saturate, and it tracks the measured drain
// rate so rejections carry an honest Retry-After instead of a
// constant.
type Limiter struct {
	mu          sync.Mutex
	cfg         LimiterConfig
	limit       float64
	outstanding int
	window      []float64   // latency samples (ms) for the current adjustment window
	completions []time.Time // ring of recent completion times for the drain rate
	compIdx     int
	compN       int
}

// NewLimiter builds a limiter. A zero-value config (TargetP99 == 0)
// yields a disabled limiter that admits everything.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{
		cfg:         cfg,
		limit:       float64(cfg.Initial),
		completions: make([]time.Time, drainRateSamples),
	}
}

// Enabled reports whether the limiter enforces anything.
func (l *Limiter) Enabled() bool { return l != nil && l.cfg.TargetP99 > 0 }

// TryAcquire claims an outstanding slot; false means the limiter is at
// its adaptive limit and the request should shed.
func (l *Limiter) TryAcquire() bool {
	if !l.Enabled() {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.outstanding >= int(l.limit) {
		return false
	}
	l.outstanding++
	return true
}

// Release returns a slot after a completed execution, feeding its
// admission-to-completion latency into the AIMD window and the
// completion clock into the drain-rate ring.
func (l *Limiter) Release(latency time.Duration, now time.Time) {
	if !l.Enabled() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.releaseLocked()
	l.completions[l.compIdx] = now
	l.compIdx = (l.compIdx + 1) % drainRateSamples
	if l.compN < drainRateSamples {
		l.compN++
	}
	l.window = append(l.window, float64(latency.Microseconds())/1000)
	if len(l.window) >= l.cfg.Window {
		l.adjustLocked()
	}
}

// Cancel returns a slot without a latency sample (the request was
// cancelled while still queued — it measured nothing).
func (l *Limiter) Cancel() {
	if !l.Enabled() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.releaseLocked()
}

func (l *Limiter) releaseLocked() {
	if l.outstanding > 0 {
		l.outstanding--
	}
}

// adjustLocked applies one AIMD step from the completed window.
func (l *Limiter) adjustLocked() {
	sorted := append([]float64(nil), l.window...)
	sort.Float64s(sorted)
	p99 := sorted[int(math.Ceil(0.99*float64(len(sorted))))-1]
	l.window = l.window[:0]
	target := float64(l.cfg.TargetP99.Microseconds()) / 1000
	if p99 > target {
		next := math.Max(float64(l.cfg.MinLimit), l.limit*l.cfg.Backoff)
		if int(next) != int(l.limit) && l.cfg.OnAdjust != nil {
			l.cfg.OnAdjust("decrease", int(next))
		}
		l.limit = next
		return
	}
	next := math.Min(float64(l.cfg.MaxLimit), l.limit+1)
	if int(next) != int(l.limit) && l.cfg.OnAdjust != nil {
		l.cfg.OnAdjust("increase", int(next))
	}
	l.limit = next
}

// Limit returns the current adaptive limit.
func (l *Limiter) Limit() int {
	if !l.Enabled() {
		return math.MaxInt32
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit)
}

// Outstanding returns the live outstanding count.
func (l *Limiter) Outstanding() int {
	if !l.Enabled() {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.outstanding
}

// Saturated reports the fully-closed state: the limit has collapsed to
// its floor and every slot is taken. Readiness probes use this to stop
// routing before the queues melt.
func (l *Limiter) Saturated() bool {
	if !l.Enabled() {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.limit) <= l.cfg.MinLimit && l.outstanding >= int(l.limit)
}

// RetryAfter estimates how long until an admission slot frees, from
// the measured drain rate: (slots to free)/(completions per second).
// With too little signal it falls back to the supplied hint. The
// estimate is clamped to [10ms, 5s].
func (l *Limiter) RetryAfter(now time.Time, fallback time.Duration) time.Duration {
	if !l.Enabled() {
		return fallback
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.compN < 2 {
		return fallback
	}
	newest := l.completions[(l.compIdx-1+drainRateSamples)%drainRateSamples]
	oldest := l.completions[(l.compIdx-l.compN+drainRateSamples)%drainRateSamples]
	span := newest.Sub(oldest)
	if span <= 0 {
		return fallback
	}
	rate := float64(l.compN-1) / span.Seconds() // completions per second
	backlog := float64(l.outstanding-int(l.limit)) + 1
	if backlog < 1 {
		backlog = 1
	}
	est := time.Duration(backlog / rate * float64(time.Second))
	if est < 10*time.Millisecond {
		est = 10 * time.Millisecond
	}
	if est > 5*time.Second {
		est = 5 * time.Second
	}
	return est
}
