package service

import (
	"testing"
	"time"
)

func TestLimiterDisabledAdmitsEverything(t *testing.T) {
	l := NewLimiter(LimiterConfig{})
	for i := 0; i < 100; i++ {
		if !l.TryAcquire() {
			t.Fatal("disabled limiter refused an acquisition")
		}
	}
	if l.Saturated() {
		t.Fatal("disabled limiter reported saturated")
	}
	if got := l.RetryAfter(time.Now(), 42*time.Millisecond); got != 42*time.Millisecond {
		t.Fatalf("disabled RetryAfter = %v, want the fallback", got)
	}
}

func TestLimiterBoundsOutstanding(t *testing.T) {
	l := NewLimiter(LimiterConfig{TargetP99: 100 * time.Millisecond, MaxLimit: 2})
	if !l.TryAcquire() || !l.TryAcquire() {
		t.Fatal("limiter refused below its limit")
	}
	if l.TryAcquire() {
		t.Fatal("limiter admitted past its limit")
	}
	l.Cancel()
	if !l.TryAcquire() {
		t.Fatal("limiter refused after a slot was cancelled back")
	}
}

// TestLimiterAIMD pins the control loop: a window of latencies above
// target shrinks the limit multiplicatively; a window below grows it by
// one.
func TestLimiterAIMD(t *testing.T) {
	var events []string
	l := NewLimiter(LimiterConfig{
		TargetP99: 50 * time.Millisecond,
		MaxLimit:  10,
		Initial:   8,
		Window:    4,
		OnAdjust:  func(dir string, limit int) { events = append(events, dir) },
	})
	now := time.Unix(1_700_000_000, 0)

	// One window of slow completions: 8 * 0.75 = 6.
	for i := 0; i < 4; i++ {
		l.TryAcquire()
		now = now.Add(10 * time.Millisecond)
		l.Release(200*time.Millisecond, now)
	}
	if got := l.Limit(); got != 6 {
		t.Fatalf("limit after slow window = %d, want 6", got)
	}
	// One window of fast completions: additive increase back to 7.
	for i := 0; i < 4; i++ {
		l.TryAcquire()
		now = now.Add(10 * time.Millisecond)
		l.Release(5*time.Millisecond, now)
	}
	if got := l.Limit(); got != 7 {
		t.Fatalf("limit after fast window = %d, want 7", got)
	}
	if len(events) != 2 || events[0] != "decrease" || events[1] != "increase" {
		t.Fatalf("adjust events = %v, want [decrease increase]", events)
	}
}

func TestLimiterNeverBelowMin(t *testing.T) {
	l := NewLimiter(LimiterConfig{TargetP99: time.Millisecond, MinLimit: 2, MaxLimit: 4, Window: 2})
	now := time.Unix(1_700_000_000, 0)
	for w := 0; w < 10; w++ {
		for i := 0; i < 2; i++ {
			l.TryAcquire()
			now = now.Add(time.Millisecond)
			l.Release(time.Second, now)
		}
	}
	if got := l.Limit(); got != 2 {
		t.Fatalf("limit after sustained overload = %d, want floor 2", got)
	}
}

func TestLimiterSaturated(t *testing.T) {
	l := NewLimiter(LimiterConfig{TargetP99: time.Millisecond, MinLimit: 1, MaxLimit: 1})
	if l.Saturated() {
		t.Fatal("saturated before any acquisition")
	}
	l.TryAcquire()
	if !l.Saturated() {
		t.Fatal("limit at floor with every slot taken should report saturated")
	}
	l.Cancel()
	if l.Saturated() {
		t.Fatal("still saturated after the slot was released")
	}
}

// TestLimiterRetryAfterFromDrainRate: the hint is computed from the
// measured completion rate, not a constant.
func TestLimiterRetryAfterFromDrainRate(t *testing.T) {
	l := NewLimiter(LimiterConfig{TargetP99: time.Second, MaxLimit: 4})
	now := time.Unix(1_700_000_000, 0)
	fallback := 250 * time.Millisecond

	if got := l.RetryAfter(now, fallback); got != fallback {
		t.Fatalf("RetryAfter with no samples = %v, want fallback %v", got, fallback)
	}
	// 11 completions 100ms apart: measured drain rate 10/s.
	for i := 0; i < 11; i++ {
		l.TryAcquire()
		now = now.Add(100 * time.Millisecond)
		l.Release(10*time.Millisecond, now)
	}
	// Nothing outstanding: one slot frees in ~1/rate = 100ms.
	if got := l.RetryAfter(now, fallback); got != 100*time.Millisecond {
		t.Fatalf("RetryAfter at 10/s drain = %v, want 100ms", got)
	}
}
