package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mem"
	"repro/internal/obs"
)

// templateConfigs are the two canonical image configurations the
// defense catalogue produces (only ExecStack varies).
var templateConfigs = []mem.ImageConfig{{}, {ExecStack: true}}

// assertTemplatesPristine clones a fresh image from every pooled
// template and diffs it against the template: any non-empty diff means
// a past run's writes leaked into shared pages.
func assertTemplatesPristine(t *testing.T, pool *mem.ImagePool) {
	t.Helper()
	for _, cfg := range templateConfigs {
		cp := pool.Template(cfg)
		if cp == nil {
			t.Fatalf("template for %+v missing (prewarm broken)", cfg)
		}
		if !cp.COW() {
			t.Fatalf("template for %+v is not a COW checkpoint", cfg)
		}
		img, err := cp.NewImage()
		if err != nil {
			t.Fatalf("clone template %+v: %v", cfg, err)
		}
		diff, err := img.Mem.DiffCheckpoint(cp)
		if err != nil {
			t.Fatalf("diff clone against template %+v: %v", cfg, err)
		}
		if len(diff) != 0 {
			t.Fatalf("template %+v mutated: a run leaked %d write regions into shared pages (first at %#x)",
				cfg, len(diff), uint64(diff[0].Addr))
		}
	}
}

// TestTemplatePoolStressIsolation hammers the pool through the full
// serving path: concurrent cache-miss (no_cache) requests for the same
// and different scenarios, across defenses that produce both template
// configurations. Run under -race this doubles as the data-race check
// for the page refcounting; the final assertion proves no request's
// writes ever reached a template page.
func TestTemplatePoolStressIsolation(t *testing.T) {
	s := New(Config{Workers: 8, QueueDepth: 256, CacheCapacity: 64, Registry: obs.NewRegistry()})
	defer s.Drain()

	reqs := []struct {
		req Request
		// mayFail marks requests whose chaos overlay is allowed to kill
		// the run (an injected fault is a legitimate degraded outcome);
		// the image is acquired from the pool before any fault can fire,
		// so isolation and hit accounting still apply.
		mayFail bool
	}{
		// Same scenario raced against itself (same template config).
		{req: Request{Scenario: "bss-overflow", NoCache: true}},
		{req: Request{Scenario: "bss-overflow", NoCache: true}},
		// Different scenarios sharing one template config.
		{req: Request{Scenario: "heap-overflow", NoCache: true}},
		{req: Request{Scenario: "stack-ret", NoCache: true}},
		// NX defense flips ExecStack: the second template config.
		{req: Request{Scenario: "bss-overflow", Defense: "nx", NoCache: true}},
		{req: Request{Scenario: "stack-ret", Defense: "nx", NoCache: true}},
		// Chaos overlay: restores run through RestoreDirty on pooled
		// images too, and injected faults exercise the panic path.
		{req: Request{Scenario: "heap-overflow", NoCache: true, Seed: 42, ChaosProb: 0.5}, mayFail: true},
	}

	rounds := 30
	if testing.Short() {
		rounds = 5
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for r := 0; r < rounds; r++ {
		for _, rq := range reqs {
			wg.Add(1)
			go func(req Request, mayFail bool) {
				defer wg.Done()
				if _, _, err := s.Handle(context.Background(), req); err != nil && !mayFail {
					failures.Add(1)
					t.Errorf("handle %+v: %v", req, err)
				}
			}(rq.req, rq.mayFail)
		}
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed", failures.Load())
	}

	pool := s.Pool()
	assertTemplatesPristine(t, pool)

	// Every scenario request went through the pool, and prewarm made
	// even the very first one a hit.
	st := pool.Stats()
	want := uint64(rounds * len(reqs))
	if st.Hits != want {
		t.Fatalf("pool stats = %+v, want %d hits (every request a template clone)", st, want)
	}
	if st.Misses != 0 {
		t.Fatalf("pool stats = %+v, want 0 misses after prewarm", st)
	}
	if st.Templates != len(templateConfigs) {
		t.Fatalf("pool holds %d templates, want %d", st.Templates, len(templateConfigs))
	}
	if got := s.reg.Value(obs.MetricServePool, obs.L("event", "hit")); got != float64(want) {
		t.Fatalf("pool hit metric = %g, want %d", got, want)
	}
}

// TestTemplatePoolRawAcquireRace drives the pool directly (no serving
// stack): concurrent acquires, each mutating its image heavily, with
// interleaved checkpoint/restore cycles — the worst case for page
// refcount races.
func TestTemplatePoolRawAcquireRace(t *testing.T) {
	pool := mem.NewImagePool()
	var wg sync.WaitGroup
	workers := 16
	if testing.Short() {
		workers = 4
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := templateConfigs[w%len(templateConfigs)]
			for i := 0; i < 10; i++ {
				img, _, err := pool.Acquire(cfg)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				// Scribble over data and stack, checkpoint, scribble
				// again, roll back.
				data := img.Data.Base
				if err := img.Mem.Memset(data, byte(w), img.Data.Size()); err != nil {
					t.Errorf("memset: %v", err)
					return
				}
				cp := img.Mem.CowCheckpoint()
				if err := img.Mem.Memset(data, byte(i), img.Data.Size()); err != nil {
					t.Errorf("memset2: %v", err)
					return
				}
				if _, err := img.Mem.RestoreDirty(cp); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
				b, err := img.Mem.Read(data, 1)
				if err != nil || b[0] != byte(w) {
					t.Errorf("worker %d: restored byte = %v (%v), want %#x", w, b, err, byte(w))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	assertTemplatesPristine(t, pool)
	st := pool.Stats()
	if st.Hits+st.Misses != uint64(workers*10) {
		t.Fatalf("stats = %+v, want %d total acquisitions", st, workers*10)
	}
}

// TestDisableTemplatePool pins the escape hatch: with the pool off the
// service still serves scenarios, just without a pool.
func TestDisableTemplatePool(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheCapacity: 8,
		DisableTemplatePool: true, Registry: obs.NewRegistry()})
	defer s.Drain()
	if s.Pool() != nil {
		t.Fatal("pool must be nil when disabled")
	}
	res, _, err := s.Handle(context.Background(), Request{Scenario: "bss-overflow"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == "" {
		t.Fatalf("result = %+v", res)
	}
}
