package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/defense"
	"repro/internal/experiments"
	"repro/internal/layout"
	"repro/internal/report"
)

// CodeVersion participates in every cache key: results computed by a
// different build of the corpus must never be served for this one.
// Bump it whenever experiment or scenario semantics change.
// v2: shadow-memory sanitizer configs (shadow, sanitized+shadow), the
// dangling-write scenario, and shadow-detection outcome changes.
const CodeVersion = "pnserve/v2"

// MaxRepeat caps the per-request measurement loop: enough to make one
// request arbitrarily heavy for benchmarks, small enough that a single
// request cannot monopolise a worker for long.
const MaxRepeat = 256

// Priority selects the scheduler lane.
type Priority int

// Priority lanes, highest first.
const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
)

// String returns the lane's wire name.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	default:
		return "normal"
	}
}

// ParsePriority maps a wire name to a lane; empty selects normal.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "normal":
		return PriorityNormal, nil
	case "high":
		return PriorityHigh, nil
	case "low", "batch":
		return PriorityLow, nil
	default:
		return PriorityNormal, badRequestf("unknown priority %q (want high, normal, or low)", s)
	}
}

// Request is one unit of servable work: either an indexed experiment
// (E1..E19) or one attack scenario crossed with a defense, data model,
// and optional deterministic chaos overlay.
type Request struct {
	// Experiment is an indexed experiment ID (E1..E19). Mutually
	// exclusive with Scenario.
	Experiment string `json:"experiment,omitempty"`
	// Scenario is an attack-catalogue scenario ID (e.g. "bss-overflow").
	Scenario string `json:"scenario,omitempty"`
	// Defense names the defense configuration for scenario requests
	// (default "none").
	Defense string `json:"defense,omitempty"`
	// Model names the data model for scenario requests: ILP32,
	// ILP32-i386, or LP64 (default: the defense's own, i.e. ILP32).
	Model string `json:"model,omitempty"`
	// Seed/ChaosProb/Faults arm the deterministic chaos overlay on
	// scenario requests. ChaosProb 0 disables injection. Experiments
	// refuse the overlay: their instrumentation seams are process-global
	// and a shared server must not mutate them per request.
	Seed      int64   `json:"seed,omitempty"`
	ChaosProb float64 `json:"chaos_prob,omitempty"`
	Faults    string  `json:"faults,omitempty"`
	// Priority selects the scheduler lane ("high", "normal", "low").
	Priority string `json:"priority,omitempty"`
	// Repeat executes the deterministic run this many times (1..256)
	// and reports the aggregate compute cost — a per-request measurement
	// loop, like a pnbench cell served over HTTP. The cluster sweep uses
	// it to give each request a tunable execution weight. Part of the
	// cache key when > 1.
	Repeat int `json:"repeat,omitempty"`
	// NoCache forces execution; the fresh result still replaces the
	// cached one.
	NoCache bool `json:"no_cache,omitempty"`
	// DeadlineMS caps this request's total time in the service —
	// queueing included. 0 selects the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Tenant is the admission-control identity (from the X-PN-Tenant
	// header; empty means the default tenant). It steers quotas, fair
	// queueing, and circuit breakers but is deliberately NOT part of the
	// cache key: results are content-addressed and tenant-agnostic.
	Tenant string `json:"-"`
	// TraceID is the request's trace identity (from the X-PN-Trace-Id
	// header; empty mints one). Like Tenant it is NOT part of the cache
	// key — tracing must never fragment the content-addressed cache —
	// and a client-supplied ID additionally arms detailed (per-write)
	// instrumentation for that request.
	TraceID string `json:"-"`
	// Admitted marks a request the cluster router already admitted
	// (quota and concurrency limiter charged there): the worker-side
	// scheduler skips its own quota and limiter so accounting never
	// double-counts a request crossing the router->worker hop. Set from
	// the X-PN-Admitted header, honoured only when the server runs in
	// worker mode (serve.Config.TrustAdmitted).
	Admitted bool `json:"-"`
	// FillFrom is a cluster peer base URL that owned this request's key
	// before the last ring rebalance. On a cache miss the service clones
	// the result from that replica (GET /cache/{key}) instead of
	// recomputing it — cross-node cache fill. Set from the
	// X-PN-Fill-From header; honoured only in worker mode.
	FillFrom string `json:"-"`
}

// request is a validated, normalized Request plus everything resolved
// from the catalogues.
type request struct {
	Request
	tenant   string
	priority Priority
	kind     string // "experiment" | "scenario"
	id       string // experiment or scenario ID
	exp      experiments.Experiment
	scenario attack.Scenario
	defCfg   defense.Config
	kinds    []chaos.Kind
	key      string
}

// models is the data-model catalogue by wire name.
func modelByName(name string) (layout.Model, error) {
	switch name {
	case "", layout.ILP32.Name:
		return layout.ILP32, nil
	case layout.ILP32i386.Name:
		return layout.ILP32i386, nil
	case layout.LP64.Name:
		return layout.LP64, nil
	default:
		return layout.Model{}, badRequestf("unknown data model %q (want %s, %s, or %s)",
			name, layout.ILP32.Name, layout.ILP32i386.Name, layout.LP64.Name)
	}
}

// normalize validates r against the catalogues and computes its
// content-addressed cache key.
func normalize(r Request) (*request, error) {
	out := &request{Request: r}
	out.tenant = NormalizeTenant(r.Tenant)
	pri, err := ParsePriority(r.Priority)
	if err != nil {
		return nil, err
	}
	out.priority = pri
	switch {
	case r.Repeat < 0 || r.Repeat > MaxRepeat:
		return nil, badRequestf("repeat %d out of range [1,%d]", r.Repeat, MaxRepeat)
	case r.Repeat == 0:
		out.Repeat = 1
	}

	switch {
	case r.Experiment != "" && r.Scenario != "":
		return nil, badRequestf("experiment and scenario are mutually exclusive")
	case r.Experiment == "" && r.Scenario == "":
		return nil, badRequestf("one of experiment or scenario is required")
	case r.Experiment != "":
		e, err := experiments.ByID(r.Experiment)
		if err != nil {
			return nil, &BadRequest{Reason: err.Error()}
		}
		if r.Defense != "" || r.Model != "" {
			return nil, badRequestf("defense/model apply to scenario requests only")
		}
		if r.ChaosProb != 0 || r.Seed != 0 || r.Faults != "" {
			return nil, badRequestf("the chaos overlay applies to scenario requests only; experiments run unperturbed")
		}
		out.kind, out.id, out.exp = "experiment", e.ID, e
	default:
		s, err := attack.ByID(r.Scenario)
		if err != nil {
			return nil, &BadRequest{Reason: err.Error()}
		}
		out.kind, out.id, out.scenario = "scenario", s.ID, s
		cfg, err := defenseByName(r.Defense)
		if err != nil {
			return nil, err
		}
		m, err := modelByName(r.Model)
		if err != nil {
			return nil, err
		}
		cfg.Model = m
		out.defCfg = cfg
		out.Model = m.Name
		out.Defense = cfg.Name
		if r.ChaosProb < 0 || r.ChaosProb > 1 {
			return nil, badRequestf("chaos_prob %g out of range [0,1]", r.ChaosProb)
		}
		if r.ChaosProb > 0 {
			kinds, err := chaos.ParseKinds(faultsOrAll(r.Faults))
			if err != nil {
				return nil, &BadRequest{Reason: err.Error()}
			}
			out.kinds = kinds
			out.Faults = chaos.KindNames(kinds)
		} else {
			// No injection: seed and kinds are inert; normalize them out
			// of the key so equivalent requests share a cache entry.
			out.Seed, out.Faults = 0, ""
		}
	}
	out.key = cacheKey(out)
	return out, nil
}

func faultsOrAll(s string) string {
	if strings.TrimSpace(s) == "" {
		return "all"
	}
	return s
}

func defenseByName(name string) (defense.Config, error) {
	if name == "" {
		return defense.None, nil
	}
	for _, c := range defense.Catalog() {
		if c.Name == name {
			return c, nil
		}
	}
	return defense.Config{}, badRequestf("unknown defense %q", name)
}

// cacheKey derives the content address: SHA-256 over the canonical
// encoding of everything that determines the result — code version,
// workload identity, data model, and the full chaos configuration.
func cacheKey(r *request) string {
	var sb strings.Builder
	for _, part := range []string{
		"v=" + CodeVersion,
		"kind=" + r.kind,
		"id=" + r.id,
		"defense=" + r.Defense,
		"model=" + r.Model,
		"seed=" + strconv.FormatInt(r.Seed, 10),
		"prob=" + strconv.FormatFloat(r.ChaosProb, 'g', -1, 64),
		"faults=" + r.Faults,
	} {
		sb.WriteString(part)
		sb.WriteByte('\n')
	}
	if r.Repeat > 1 {
		// Appended only when armed so every pre-existing key is unchanged.
		sb.WriteString("repeat=" + strconv.Itoa(r.Repeat))
		sb.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// Key exposes a request's content address without scheduling it (for
// tests and cache tooling). It returns an error for invalid requests.
func Key(r Request) (string, error) {
	n, err := normalize(r)
	if err != nil {
		return "", err
	}
	return n.key, nil
}

// Result is one computed (or cache-served) answer.
type Result struct {
	// Key is the content address the result is stored under.
	Key string `json:"key"`
	// Kind is "experiment" or "scenario"; ID names the unit.
	Kind string `json:"kind"`
	ID   string `json:"id"`
	// Defense/Model/Seed/ChaosProb/Faults echo the normalized scenario
	// parameters (scenario results only).
	Defense   string  `json:"defense,omitempty"`
	Model     string  `json:"model,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	ChaosProb float64 `json:"chaos_prob,omitempty"`
	Faults    string  `json:"faults,omitempty"`
	// Repeat echoes the request's measurement loop count when > 1;
	// ComputeNS then spans all Repeat executions.
	Repeat int `json:"repeat,omitempty"`
	// Status is "ok" for experiments and the outcome word (SUCCESS,
	// prevented, detected, crashed, no-effect) for scenarios.
	Status string `json:"status"`
	// Table is the experiment's report table, or a rendered outcome
	// summary for scenarios.
	Table report.TableData `json:"table"`
	// Details/Metrics carry the scenario outcome's structured fields.
	Details []string           `json:"details,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// InjectedFaults counts chaos injections during the run.
	InjectedFaults int `json:"injected_faults,omitempty"`
	// ComputeNS is the wall-clock cost of the execution that produced
	// this result. Cache hits return the original cost — the work a hit
	// saved.
	ComputeNS int64 `json:"compute_ns"`
	// Version is the CodeVersion that computed the result.
	Version string `json:"code_version"`
}

// outcomeTable renders an attack outcome as a small report table so
// scenario responses carry the same table shape experiments do.
func outcomeTable(o *attack.Outcome, model string) *report.Table {
	t := report.NewTable(
		fmt.Sprintf("scenario %s vs %s (%s)", o.Scenario, o.Defense, model),
		"quantity", "value")
	t.AddRow("status", o.Status())
	t.AddRow("succeeded", boolWord(o.Succeeded))
	if o.Prevented {
		t.AddRow("prevented by", o.PreventedBy)
	}
	if o.Detected {
		t.AddRow("detected by", o.DetectedBy)
	}
	t.AddRow("crashed", boolWord(o.Crashed))
	for _, k := range sortedMetricKeys(o.Metrics) {
		t.AddRow("metric "+k, strconv.FormatFloat(o.Metrics[k], 'g', -1, 64))
	}
	return t
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func boolWord(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
