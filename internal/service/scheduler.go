package service

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// SchedulerConfig tunes the worker pool and its admission-control
// stack.
type SchedulerConfig struct {
	// Workers is the pool size (default 4).
	Workers int
	// QueueDepth bounds each priority lane's admission queue
	// (default 64). A full lane sheds instead of queueing.
	QueueDepth int
	// RetryAfter is the fallback backoff hint attached to shed
	// responses when no measured drain rate is available yet
	// (default 250ms). Once the limiter has seen completions,
	// rejections carry an honest estimate instead.
	RetryAfter time.Duration
	// Quota arms per-tenant token-bucket admission quotas (zero value
	// = disabled).
	Quota QuotaConfig
	// Limiter arms the adaptive concurrency limiter (TargetP99 <= 0 =
	// disabled). MaxLimit defaults to Workers + 3*QueueDepth.
	Limiter LimiterConfig
	// Breaker arms the per-tenant, per-scenario-class circuit breakers
	// (Threshold 0 = disabled).
	Breaker BreakerConfig
	// AgingThreshold is the queue wait at which any request outranks
	// strict lane order (no starvation). Default 1s; negative disables
	// aging.
	AgingThreshold time.Duration
	// Now is the clock seam (default time.Now). Every time-dependent
	// admission decision — token refill, aging, breaker cooldowns,
	// drain-rate estimates — reads this clock, so tests and the
	// deterministic tenant soak are byte-reproducible.
	Now func() time.Time
	// Metrics, when non-nil, receives queue-depth and in-flight gauges
	// plus per-outcome request, tenant, limiter, and breaker counters.
	Metrics *obs.Registry
	// Bus, when non-nil, receives admission transitions (admitted, shed
	// with reason, limiter adjustments, breaker events) as live events.
	// Publishes are gated on Bus.Active(), so an unwatched server pays
	// one atomic load per decision.
	Bus *obs.Bus
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.AgingThreshold == 0 {
		c.AgingThreshold = time.Second
	}
	if c.AgingThreshold < 0 {
		c.AgingThreshold = 0 // disabled
	}
	if c.Limiter.MaxLimit <= 0 {
		c.Limiter.MaxLimit = c.Workers + 3*c.QueueDepth
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Admit identifies one admission: who is asking (tenant), how urgent
// (priority lane), and what class of work it is (the circuit-breaker
// grouping, e.g. "scenario/stack-ret").
type Admit struct {
	Tenant   string
	Priority Priority
	// Class groups executions for the circuit breaker; empty defaults
	// to ID.
	Class string
	// ID names the unit of work in supervision records.
	ID string
	// Trace, when non-nil, receives the queue-wait stage and scopes the
	// admission events this request publishes on the bus.
	Trace *RequestTrace
	// Trusted marks a request already admitted upstream (the cluster
	// router's quota and limiter, relayed via the X-PN-Admitted hop
	// header). Trusted requests skip the local quota and limiter — take
	// and give back nothing — so fleet accounting never double-counts;
	// the circuit breaker still applies, because failure history is
	// worker-local.
	Trusted bool
}

// task is one admitted unit of work.
type task struct {
	ctx      context.Context
	adm      Admit
	fn       func(ctx context.Context) (any, error)
	done     chan taskResult
	admitted time.Time
	// soak carries the simulated job when the deterministic tenant soak
	// drives the fair queue directly (nil on the live path).
	soak *soakJob
}

type taskResult struct {
	val any
	err error
}

// Scheduler is a bounded worker pool with a multi-tenant admission
// stack in front of weighted-fair priority lanes:
//
//  1. Per-tenant token-bucket quotas throttle aggressive clients at
//     the door (reason "quota").
//  2. Per-(tenant, class) circuit breakers fast-fail scenario classes
//     that keep dying, per tenant, without touching healthy traffic
//     (reason "breaker_open").
//  3. An adaptive concurrency limiter (AIMD on observed p99 vs a
//     target) sheds before the queues saturate (reason "limiter").
//  4. Each lane is an indexed per-tenant multi-queue drained by
//     deficit round-robin, with priority aging promoting long-waiting
//     work so nothing starves (reason "queue_full" when a lane is at
//     capacity).
//
// Admission is non-blocking; every refusal is a structured Rejection
// whose RetryAfterMS is computed from measured state. Each execution
// runs under resilience supervision so a panicking scenario degrades
// that one request, not the process.
type Scheduler struct {
	cfg      SchedulerConfig
	fq       *fairQueue
	quotas   *TenantQuotas
	limiter  *Limiter
	breakers *breakerSet

	mu       sync.Mutex
	draining bool
	inflight atomic.Int64

	wg sync.WaitGroup
}

// NewScheduler builds and starts the pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg}
	s.quotas = NewTenantQuotas(cfg.Quota, cfg.Now)
	lim := cfg.Limiter
	lim.OnAdjust = func(direction string, limit int) {
		cfg.Metrics.Inc(obs.MetricServeLimitEvents, obs.L("direction", direction))
		cfg.Metrics.Set(obs.MetricServeLimitValue, float64(limit))
		if cfg.Bus.Active() {
			cfg.Bus.Publish(obs.KindAdmission, "", "", map[string]string{
				"action": "limit", "direction": direction, "limit": strconv.Itoa(limit)})
		}
	}
	s.limiter = NewLimiter(lim)
	brk := cfg.Breaker
	brk.OnEvent = func(event, tenant, class string) {
		cfg.Metrics.Inc(obs.MetricServeBreakerEvents,
			obs.L("event", event), obs.L("tenant", tenant), obs.L("class", class))
		if cfg.Bus.Active() {
			cfg.Bus.Publish(obs.KindAdmission, "", tenant, map[string]string{
				"action": "breaker", "event": event, "class": class})
		}
	}
	s.breakers = newBreakerSet(brk, cfg.Now)
	s.fq = newFairQueue(cfg.QueueDepth, cfg.AgingThreshold, cfg.Quota.WeightFor, cfg.Now)
	s.fq.onPromote = func(tenant string) {
		cfg.Metrics.Inc(obs.MetricServeAgedPromotions, obs.L("tenant", tenant))
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Drain stops admitting new work. In-flight and already-queued work
// still completes; call Wait to join it.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	s.fq.close()
}

// Draining reports whether Drain was called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Wait blocks until every worker has exited. Only meaningful after
// Drain.
func (s *Scheduler) Wait() { s.wg.Wait() }

// QueueLen returns a lane's current depth (all tenants).
func (s *Scheduler) QueueLen(p Priority) int { return s.fq.len(p) }

// TenantQueueLen returns one tenant's depth in a lane.
func (s *Scheduler) TenantQueueLen(p Priority, tenant string) int {
	return s.fq.tenantLen(p, NormalizeTenant(tenant))
}

// Limiter exposes the adaptive concurrency limiter (readiness probes
// read Saturated).
func (s *Scheduler) Limiter() *Limiter { return s.limiter }

// Quotas exposes the tenant quota table (for tests and tooling).
func (s *Scheduler) Quotas() *TenantQuotas { return s.quotas }

// BreakerOpen reports whether (tenant, class) is fast-failing.
func (s *Scheduler) BreakerOpen(tenant, class string) bool {
	return s.breakers.open(NormalizeTenant(tenant), class)
}

// AgedPromotions returns how many queued requests were served via the
// aging path.
func (s *Scheduler) AgedPromotions() uint64 { return s.fq.Promotions() }

// Do admits fn for adm and waits for its completion. The contract the
// serving layer depends on:
//
//   - Every refusal — tenant out of quota, breaker open, limiter at
//     its adaptive limit, lane full, draining — returns a *Rejection
//     immediately with a machine-readable Reason and an honest
//     RetryAfterMS.
//   - After Drain, every Do returns the draining Rejection.
//   - A request whose ctx ends while still queued is never executed;
//     it is surgically removed from its fairness queue and its quota
//     token and limiter slot are given back, and Do returns ctx.Err().
//   - fn runs under resilience supervision with the context's
//     remaining time as its deadline: panics become structured
//     *ExecError values, not process crashes.
func (s *Scheduler) Do(ctx context.Context, adm Admit, fn func(ctx context.Context) (any, error)) (any, error) {
	adm.Tenant = NormalizeTenant(adm.Tenant)
	if adm.Class == "" {
		adm.Class = adm.ID
	}
	if s.Draining() {
		return nil, s.reject(adm, ReasonDraining, s.cfg.RetryAfter)
	}
	if ok, wait := s.breakers.allow(adm.Tenant, adm.Class); !ok {
		s.shed(adm, ReasonBreakerOpen)
		return nil, s.reject(adm, ReasonBreakerOpen, wait)
	}
	if !adm.Trusted {
		if ok, wait := s.quotas.TryTake(adm.Tenant); !ok {
			s.shed(adm, ReasonQuota)
			return nil, s.reject(adm, ReasonQuota, wait)
		}
	}
	now := s.cfg.Now()
	if !adm.Trusted && !s.limiter.TryAcquire() {
		s.quotas.Refund(adm.Tenant)
		s.shed(adm, ReasonLimiter)
		return nil, s.reject(adm, ReasonLimiter, s.limiter.RetryAfter(now, s.cfg.RetryAfter))
	}
	t := &task{ctx: ctx, adm: adm, fn: fn, done: make(chan taskResult, 1), admitted: now}
	entry, pres := s.fq.push(t, adm.Tenant, adm.Priority)
	switch pres {
	case pushFull:
		s.refund(adm)
		s.shed(adm, ReasonQueueFull)
		return nil, s.reject(adm, ReasonQueueFull, s.limiter.RetryAfter(now, s.cfg.RetryAfter))
	case pushClosed:
		s.refund(adm)
		return nil, s.reject(adm, ReasonDraining, s.cfg.RetryAfter)
	}
	s.gauges()
	if s.cfg.Bus.Active() {
		s.cfg.Bus.Publish(obs.KindAdmission, adm.Trace.Ref(), adm.Tenant, map[string]string{
			"action": "admitted", "lane": adm.Priority.String()})
	}
	select {
	case r := <-t.done:
		return r.val, r.err
	case <-ctx.Done():
		if s.fq.remove(entry) {
			// Still queued: the request consumed nothing, so its lane
			// slot, quota token, and limiter slot are all given back —
			// the no-leak contract.
			s.refund(adm)
			s.gauges()
		}
		// Otherwise a worker already claimed it; the worker re-checks
		// ctx before executing and owns the accounting either way.
		s.count(adm, "canceled")
		return nil, ctx.Err()
	}
}

// refund returns the quota token and limiter slot a non-trusted
// admission took. Trusted admissions took neither, so they return
// neither — the accounting stays balanced on both paths.
func (s *Scheduler) refund(adm Admit) {
	if adm.Trusted {
		return
	}
	s.quotas.Refund(adm.Tenant)
	s.limiter.Cancel()
}

// reject builds the structured refusal for adm.
func (s *Scheduler) reject(adm Admit, reason string, retryAfter time.Duration) *Rejection {
	ms := retryAfter.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	return &Rejection{
		Code:         reasonCode(reason),
		Reason:       reason,
		Tenant:       adm.Tenant,
		Lane:         adm.Priority.String(),
		QueueLen:     s.fq.len(adm.Priority),
		QueueCap:     s.cfg.QueueDepth,
		RetryAfterMS: ms,
	}
}

// shed records one shed decision in the lane, reason, and tenant
// metric families, and announces it on the bus.
func (s *Scheduler) shed(adm Admit, reason string) {
	s.cfg.Metrics.Inc(obs.MetricServeRequests, obs.L("lane", adm.Priority.String()), obs.L("outcome", "shed"))
	s.cfg.Metrics.Inc(obs.MetricServeShed, obs.L("lane", adm.Priority.String()), obs.L("reason", reason))
	s.cfg.Metrics.Inc(obs.MetricServeTenantShed, obs.L("tenant", adm.Tenant), obs.L("reason", reason))
	if s.cfg.Bus.Active() {
		s.cfg.Bus.Publish(obs.KindAdmission, adm.Trace.Ref(), adm.Tenant, map[string]string{
			"action": "shed", "reason": reason, "lane": adm.Priority.String()})
	}
}

func (s *Scheduler) count(adm Admit, outcome string) {
	s.cfg.Metrics.Inc(obs.MetricServeRequests, obs.L("lane", adm.Priority.String()), obs.L("outcome", outcome))
	s.cfg.Metrics.Inc(obs.MetricServeTenantRequests, obs.L("tenant", adm.Tenant), obs.L("outcome", outcome))
	if s.cfg.Bus.Active() {
		s.cfg.Bus.Publish(obs.KindMetric, adm.Trace.Ref(), adm.Tenant, map[string]string{
			"name": obs.MetricServeRequests, "delta": "1",
			"lane": adm.Priority.String(), "outcome": outcome})
	}
}

func (s *Scheduler) gauges() {
	if s.cfg.Metrics == nil {
		return
	}
	for p := PriorityHigh; p <= PriorityLow; p++ {
		s.cfg.Metrics.Set(obs.MetricServeQueueDepth, float64(s.fq.len(p)), obs.L("lane", p.String()))
	}
	if s.limiter.Enabled() {
		s.cfg.Metrics.Set(obs.MetricServeLimitValue, float64(s.limiter.Limit()))
		s.cfg.Metrics.Set(obs.MetricServeLimitOutstanding, float64(s.limiter.Outstanding()))
	}
}

// worker drains the fair queue until Drain and all lanes are empty.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		e := s.fq.pop()
		if e == nil {
			return
		}
		s.execute(e.t)
		s.gauges()
	}
}

// execute runs one task under supervision, honouring its context.
func (s *Scheduler) execute(t *task) {
	if err := t.ctx.Err(); err != nil {
		// Cancelled or expired between claim and execution: never run.
		// Do's ctx arm already reported the outcome; the limiter slot is
		// returned without a latency sample.
		if !t.adm.Trusted {
			s.limiter.Cancel()
		}
		t.done <- taskResult{err: err}
		return
	}
	s.cfg.Metrics.Set(obs.MetricServeInflight, float64(s.inflight.Add(1)))
	defer func() { s.cfg.Metrics.Set(obs.MetricServeInflight, float64(s.inflight.Add(-1))) }()
	start := s.cfg.Now()
	// Queue wait: admission to worker pickup — the stage that grows
	// first under overload.
	s.cfg.Metrics.Observe(obs.MetricServeStageQueueWait, durMS(start.Sub(t.admitted)),
		obs.L("lane", t.adm.Priority.String()))
	t.adm.Trace.Stage(StageQueueWait, t.admitted, start, nil)

	pol := resilience.Policy{MaxAttempts: 1}
	if dl, ok := t.ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			if !t.adm.Trusted {
				s.limiter.Cancel()
			}
			t.done <- taskResult{err: context.DeadlineExceeded}
			return
		}
		pol.Timeout = remaining
	}
	res := resilience.Supervise(resilience.Job{
		ID:  t.adm.ID,
		Run: func(ctx context.Context, attempt int) (any, error) { return t.fn(ctx) },
	}, pol)

	end := s.cfg.Now()
	// The limiter's AIMD signal is the full admission-to-completion
	// sojourn time: queueing delay is the earliest symptom of overload.
	// Trusted work never acquired a slot, so it contributes no sample —
	// the router's limiter observes the end-to-end latency instead.
	if !t.adm.Trusted {
		s.limiter.Release(end.Sub(t.admitted), end)
	}
	s.cfg.Metrics.Observe(obs.MetricServeLatency, float64(end.Sub(start).Milliseconds()),
		obs.L("lane", t.adm.Priority.String()))

	if res.Status == resilience.StatusOK {
		s.breakers.success(t.adm.Tenant, t.adm.Class)
		s.count(t.adm, "ok")
		t.done <- taskResult{val: res.Value}
		return
	}
	s.breakers.failure(t.adm.Tenant, t.adm.Class)
	s.count(t.adm, string(res.Status))
	t.done <- taskResult{err: &ExecError{
		ID:      t.adm.ID,
		Status:  res.Status,
		Crashes: res.Crashes,
		Message: res.Err,
	}}
}
