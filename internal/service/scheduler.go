package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// SchedulerConfig tunes the worker pool.
type SchedulerConfig struct {
	// Workers is the pool size (default 4).
	Workers int
	// QueueDepth bounds each priority lane's admission queue
	// (default 64). A full lane sheds instead of queueing.
	QueueDepth int
	// RetryAfter is the backoff hint attached to shed responses
	// (default 250ms).
	RetryAfter time.Duration
	// Metrics, when non-nil, receives queue-depth and in-flight gauges
	// plus per-outcome request counters.
	Metrics *obs.Registry
}

func (c SchedulerConfig) withDefaults() SchedulerConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	return c
}

// task is one admitted unit of work.
type task struct {
	ctx  context.Context
	id   string
	pri  Priority
	fn   func(ctx context.Context) (any, error)
	done chan taskResult
}

type taskResult struct {
	val any
	err error
}

// Scheduler is a bounded worker pool with strict-ish priority lanes
// and load shedding. Admission is non-blocking: when a lane's queue is
// full the request is rejected with a structured Rejection rather than
// queued unboundedly. Each execution runs under resilience supervision
// so a panicking scenario degrades that one request, not the process.
type Scheduler struct {
	cfg   SchedulerConfig
	lanes [3]chan *task // indexed by Priority

	mu       sync.Mutex
	draining bool
	inflight atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewScheduler builds and starts the pool.
func NewScheduler(cfg SchedulerConfig) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, stop: make(chan struct{})}
	for i := range s.lanes {
		s.lanes[i] = make(chan *task, cfg.QueueDepth)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Drain stops admitting new work. In-flight and already-queued work
// still completes; call Wait to join it.
func (s *Scheduler) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.stop)
}

// Draining reports whether Drain was called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Wait blocks until every worker has exited. Only meaningful after
// Drain.
func (s *Scheduler) Wait() { s.wg.Wait() }

// QueueLen returns a lane's current depth.
func (s *Scheduler) QueueLen(p Priority) int { return len(s.lanes[p]) }

// Do admits fn into lane pri and waits for its completion. The
// contract the serving layer depends on:
//
//   - A full lane returns a *Rejection immediately (load shedding).
//   - After Drain, every Do returns a *Rejection with Code 503.
//   - A request whose ctx ends while still queued is never executed;
//     Do returns ctx.Err().
//   - fn runs under resilience supervision with the context's
//     remaining time as its deadline: panics become structured
//     *ExecError values, not process crashes.
func (s *Scheduler) Do(ctx context.Context, pri Priority, id string, fn func(ctx context.Context) (any, error)) (any, error) {
	if s.Draining() {
		return nil, s.reject(pri, 503, "draining")
	}
	t := &task{ctx: ctx, id: id, pri: pri, fn: fn, done: make(chan taskResult, 1)}
	select {
	case s.lanes[pri] <- t:
		s.gauges()
	default:
		s.count(pri, "shed")
		return nil, s.reject(pri, 429, "queue-full")
	}
	select {
	case r := <-t.done:
		return r.val, r.err
	case <-ctx.Done():
		// The worker may still pick the task up; it re-checks ctx before
		// executing, so a cancelled queued request never runs.
		s.count(pri, "canceled")
		return nil, ctx.Err()
	}
}

func (s *Scheduler) reject(pri Priority, code int, reason string) *Rejection {
	return &Rejection{
		Code:         code,
		Reason:       reason,
		Lane:         pri.String(),
		QueueLen:     len(s.lanes[pri]),
		QueueCap:     s.cfg.QueueDepth,
		RetryAfterMS: s.cfg.RetryAfter.Milliseconds(),
	}
}

func (s *Scheduler) count(pri Priority, outcome string) {
	s.cfg.Metrics.Inc(obs.MetricServeRequests, obs.L("lane", pri.String()), obs.L("outcome", outcome))
	if outcome == "shed" {
		s.cfg.Metrics.Inc(obs.MetricServeShed, obs.L("lane", pri.String()))
	}
}

func (s *Scheduler) gauges() {
	if s.cfg.Metrics == nil {
		return
	}
	for p := PriorityHigh; p <= PriorityLow; p++ {
		s.cfg.Metrics.Set(obs.MetricServeQueueDepth, float64(len(s.lanes[p])), obs.L("lane", p.String()))
	}
}

// worker drains the lanes highest-priority-first until Drain and all
// queues are empty.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	hi, no, lo := s.lanes[PriorityHigh], s.lanes[PriorityNormal], s.lanes[PriorityLow]
	for {
		// Strict preference without busy-waiting: probe lanes in priority
		// order, then block across all of them (plus stop).
		var t *task
		select {
		case t = <-hi:
		default:
			select {
			case t = <-hi:
			case t = <-no:
			default:
				select {
				case t = <-hi:
				case t = <-no:
				case t = <-lo:
				case <-s.stop:
					// Draining: finish whatever is still queued, then exit.
					select {
					case t = <-hi:
					case t = <-no:
					case t = <-lo:
					default:
						return
					}
				}
			}
		}
		s.execute(t)
		s.gauges()
	}
}

// execute runs one task under supervision, honouring its context.
func (s *Scheduler) execute(t *task) {
	if err := t.ctx.Err(); err != nil {
		// Cancelled or expired while queued: never execute. Do's ctx arm
		// already reported the outcome to the caller.
		t.done <- taskResult{err: err}
		return
	}
	s.cfg.Metrics.Set(obs.MetricServeInflight, float64(s.inflight.Add(1)))
	defer func() { s.cfg.Metrics.Set(obs.MetricServeInflight, float64(s.inflight.Add(-1))) }()
	start := time.Now()

	pol := resilience.Policy{MaxAttempts: 1}
	if dl, ok := t.ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			t.done <- taskResult{err: context.DeadlineExceeded}
			return
		}
		pol.Timeout = remaining
	}
	res := resilience.Supervise(resilience.Job{
		ID:  t.id,
		Run: func(ctx context.Context, attempt int) (any, error) { return t.fn(ctx) },
	}, pol)

	s.cfg.Metrics.Observe(obs.MetricServeLatency, float64(time.Since(start).Milliseconds()),
		obs.L("lane", t.pri.String()))

	if res.Status == resilience.StatusOK {
		s.count(t.pri, "ok")
		t.done <- taskResult{val: res.Value}
		return
	}
	s.count(t.pri, string(res.Status))
	t.done <- taskResult{err: &ExecError{
		ID:      t.id,
		Status:  res.Status,
		Crashes: res.Crashes,
		Message: res.Err,
	}}
}
