package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// occupyWorker parks the scheduler's single worker on a task until
// release is closed.
func occupyWorker(t *testing.T, s *Scheduler, tenant string) (release chan struct{}, done chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	done = make(chan struct{})
	running := make(chan struct{})
	go func() {
		defer close(done)
		s.Do(context.Background(), Admit{Tenant: tenant, Priority: PriorityNormal, ID: "blocker"},
			func(ctx context.Context) (any, error) {
				close(running)
				<-release
				return nil, nil
			})
	}()
	select {
	case <-running:
	case <-time.After(2 * time.Second):
		t.Fatal("blocker never started")
	}
	return release, done
}

// TestCancelledQueuedReleasesQuotaAndLimiter is the no-leak satellite
// contract, exercised under every lane: a request cancelled while
// queued gives back its fairness-queue slot, its quota token, and its
// limiter slot.
func TestCancelledQueuedReleasesQuotaAndLimiter(t *testing.T) {
	for _, lane := range []Priority{PriorityHigh, PriorityNormal, PriorityLow} {
		t.Run(lane.String(), func(t *testing.T) {
			clk := newAdmissionClock()
			s := NewScheduler(SchedulerConfig{
				Workers:    1,
				QueueDepth: 4,
				Quota:      QuotaConfig{Rate: 100, Burst: 3},
				Limiter:    LimiterConfig{TargetP99: time.Second, MaxLimit: 4},
				Now:        clk.Now, // frozen: no refill, so token counts are exact
			})
			release, blockerDone := occupyWorker(t, s, "acme")
			// Blocker holds one token and one limiter slot.
			if got := s.Quotas().Tokens("acme"); got != 2 {
				t.Fatalf("tokens with blocker running = %g, want 2", got)
			}

			ctx, cancel := context.WithCancel(context.Background())
			result := make(chan error, 1)
			go func() {
				_, err := s.Do(ctx, Admit{Tenant: "acme", Priority: lane, ID: "victim"},
					func(ctx context.Context) (any, error) { return nil, nil })
				result <- err
			}()
			deadline := time.After(2 * time.Second)
			for s.QueueLen(lane) == 0 {
				select {
				case <-deadline:
					t.Fatal("victim never queued")
				default:
					time.Sleep(time.Millisecond)
				}
			}
			if got := s.Quotas().Tokens("acme"); got != 1 {
				t.Fatalf("tokens with victim queued = %g, want 1", got)
			}
			if got := s.Limiter().Outstanding(); got != 2 {
				t.Fatalf("limiter outstanding with victim queued = %d, want 2", got)
			}

			cancel()
			select {
			case err := <-result:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Do returned %v, want context.Canceled", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("cancelled request did not return")
			}
			if got := s.QueueLen(lane); got != 0 {
				t.Fatalf("lane depth after cancel = %d, want 0 (slot leaked)", got)
			}
			if got := s.Quotas().Tokens("acme"); got != 2 {
				t.Fatalf("tokens after cancel = %g, want 2 (token leaked)", got)
			}
			if got := s.Limiter().Outstanding(); got != 1 {
				t.Fatalf("limiter outstanding after cancel = %d, want 1 (slot leaked)", got)
			}

			close(release)
			<-blockerDone
			s.Drain()
			s.Wait()
			if got := s.Limiter().Outstanding(); got != 0 {
				t.Fatalf("limiter outstanding after drain = %d, want 0", got)
			}
		})
	}
}

// TestDrainConcurrentWithAdmission races Drain against a burst of
// admissions: every Do must return (a value, a Rejection, or a ctx
// error) and the scheduler must quiesce. Run under -race in CI.
func TestDrainConcurrentWithAdmission(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers:    2,
		QueueDepth: 8,
		Quota:      QuotaConfig{Rate: 1e6, Burst: 1e6},
		Limiter:    LimiterConfig{TargetP99: time.Second, MaxLimit: 64},
	})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "racer"},
				func(ctx context.Context) (any, error) { return 1, nil })
			if err != nil {
				var rej *Rejection
				if !errors.As(err, &rej) {
					t.Errorf("Do returned %v, want nil or *Rejection", err)
				}
			}
		}()
	}
	close(start)
	s.Drain()
	wg.Wait()
	s.Wait()
	if got := s.Limiter().Outstanding(); got != 0 {
		t.Fatalf("limiter outstanding after quiesce = %d, want 0", got)
	}
}

// TestQuotaRejection: an out-of-tokens tenant is shed with the quota
// reason and an honest refill-schedule hint, without affecting other
// tenants.
func TestQuotaRejection(t *testing.T) {
	clk := newAdmissionClock()
	s := NewScheduler(SchedulerConfig{
		Workers:    1,
		QueueDepth: 4,
		Quota:      QuotaConfig{Rate: 10, Burst: 1},
		Now:        clk.Now,
	})
	defer func() { s.Drain(); s.Wait() }()

	if _, err := s.Do(context.Background(), Admit{Tenant: "greedy", Priority: PriorityNormal, ID: "one"},
		func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("first request rejected: %v", err)
	}
	_, err := s.Do(context.Background(), Admit{Tenant: "greedy", Priority: PriorityNormal, ID: "two"},
		func(ctx context.Context) (any, error) {
			t.Error("quota-rejected request executed")
			return nil, nil
		})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonQuota || rej.Code != 429 {
		t.Fatalf("second request returned %v, want 429 quota Rejection", err)
	}
	if rej.Tenant != "greedy" {
		t.Fatalf("rejection tenant = %q, want greedy", rej.Tenant)
	}
	if rej.RetryAfterMS != 100 {
		t.Fatalf("quota RetryAfterMS = %d, want 100 (1 token at 10/s)", rej.RetryAfterMS)
	}
	// Another tenant is untouched.
	if _, err := s.Do(context.Background(), Admit{Tenant: "polite", Priority: PriorityNormal, ID: "three"},
		func(ctx context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestLimiterRejection: with every limiter slot held, admission sheds
// with the limiter reason.
func TestLimiterRejection(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers:    1,
		QueueDepth: 4,
		Limiter:    LimiterConfig{TargetP99: time.Second, MaxLimit: 1},
	})
	release, blockerDone := occupyWorker(t, s, "")
	defer func() { close(release); <-blockerDone; s.Drain(); s.Wait() }()

	_, err := s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "over"},
		func(ctx context.Context) (any, error) {
			t.Error("limiter-rejected request executed")
			return nil, nil
		})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonLimiter || rej.Code != 429 {
		t.Fatalf("Do returned %v, want 429 limiter Rejection", err)
	}
	if rej.RetryAfterMS <= 0 {
		t.Fatalf("limiter RetryAfterMS = %d, want > 0", rej.RetryAfterMS)
	}
}

// TestBreakerIsolatesTenantAndClass: repeated execution deaths open the
// breaker for that (tenant, class) only; other tenants and the same
// tenant's other classes keep flowing, and the cooldown admits a probe
// that can close it again.
func TestBreakerIsolatesTenantAndClass(t *testing.T) {
	clk := newAdmissionClock()
	s := NewScheduler(SchedulerConfig{
		Workers:    2,
		QueueDepth: 8,
		Breaker:    BreakerConfig{Threshold: 2, Cooldown: time.Second},
		Now:        clk.Now,
	})
	defer func() { s.Drain(); s.Wait() }()

	boom := func(ctx context.Context) (any, error) { panic("simulated SIGSEGV") }
	fine := func(ctx context.Context) (any, error) { return "ok", nil }
	adm := Admit{Tenant: "acme", Priority: PriorityNormal, Class: "scenario/stack-ret", ID: "scenario/stack-ret"}

	for i := 0; i < 2; i++ {
		var exe *ExecError
		if _, err := s.Do(context.Background(), adm, boom); !errors.As(err, &exe) {
			t.Fatalf("crash %d returned %v, want *ExecError", i, err)
		}
	}
	if !s.BreakerOpen("acme", "scenario/stack-ret") {
		t.Fatal("breaker not open after threshold deaths")
	}
	_, err := s.Do(context.Background(), adm, fine)
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Reason != ReasonBreakerOpen || rej.Code != 503 {
		t.Fatalf("open-breaker Do returned %v, want 503 breaker_open Rejection", err)
	}
	if rej.RetryAfterMS <= 0 || rej.RetryAfterMS > 1000 {
		t.Fatalf("breaker RetryAfterMS = %d, want (0, 1000]", rej.RetryAfterMS)
	}

	// Same class, different tenant: unaffected. Same tenant, other
	// class: also unaffected.
	other := adm
	other.Tenant = "umbrella"
	if _, err := s.Do(context.Background(), other, fine); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	otherClass := adm
	otherClass.Class, otherClass.ID = "scenario/bss-overflow", "scenario/bss-overflow"
	if _, err := s.Do(context.Background(), otherClass, fine); err != nil {
		t.Fatalf("other class rejected: %v", err)
	}

	// After the cooldown a probe is admitted; its success closes the
	// breaker.
	clk.Advance(1100 * time.Millisecond)
	if _, err := s.Do(context.Background(), adm, fine); err != nil {
		t.Fatalf("post-cooldown probe rejected: %v", err)
	}
	if s.BreakerOpen("acme", "scenario/stack-ret") {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestAgingDefeatsPriorityStarvation at the scheduler level: a low
// request stuck behind a continuous high-priority stream is eventually
// served via promotion.
func TestAgingDefeatsPriorityStarvation(t *testing.T) {
	s := NewScheduler(SchedulerConfig{
		Workers:        1,
		QueueDepth:     16,
		AgingThreshold: 20 * time.Millisecond,
	})
	release, blockerDone := occupyWorker(t, s, "")

	lowServed := make(chan struct{})
	go s.Do(context.Background(), Admit{Priority: PriorityLow, ID: "starver"},
		func(ctx context.Context) (any, error) { close(lowServed); return nil, nil })
	deadline := time.After(2 * time.Second)
	for s.QueueLen(PriorityLow) == 0 {
		select {
		case <-deadline:
			t.Fatal("low request never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Let the low entry age past the threshold while a fresh high
	// request arrives, then free the worker.
	time.Sleep(30 * time.Millisecond)
	go s.Do(context.Background(), Admit{Priority: PriorityHigh, ID: "fresh"},
		func(ctx context.Context) (any, error) { return nil, nil })
	for s.QueueLen(PriorityHigh) == 0 {
		select {
		case <-deadline:
			t.Fatal("high request never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	<-blockerDone
	select {
	case <-lowServed:
	case <-time.After(2 * time.Second):
		t.Fatal("aged low-priority request was starved")
	}
	s.Drain()
	s.Wait()
	if s.AgedPromotions() == 0 {
		t.Fatal("no aging promotion recorded")
	}
}
