package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilience"
)

// blockWorker occupies the pool's single worker until release is
// closed, and signals once it is running.
func blockWorker(t *testing.T, s *Scheduler) (release chan struct{}, done chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	done = make(chan struct{})
	running := make(chan struct{})
	go func() {
		defer close(done)
		s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "blocker"}, func(ctx context.Context) (any, error) {
			close(running)
			<-release
			return nil, nil
		})
	}()
	select {
	case <-running:
	case <-time.After(2 * time.Second):
		t.Fatal("blocker never started")
	}
	return release, done
}

// TestCancelledQueuedRequestNeverExecutes is the satellite contract:
// deadlines/cancellation stop queued (not yet running) work — a
// request cancelled while waiting in the admission queue is completed
// with ctx.Err() and its function is never invoked.
func TestCancelledQueuedRequestNeverExecutes(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 4})
	release, blockerDone := blockWorker(t, s)

	var executed atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	result := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, Admit{Priority: PriorityNormal, ID: "victim"}, func(ctx context.Context) (any, error) {
			executed.Store(true)
			return nil, nil
		})
		result <- err
	}()

	// Wait until the victim is queued behind the blocker, then cancel it.
	deadline := time.After(2 * time.Second)
	for s.QueueLen(PriorityNormal) == 0 {
		select {
		case <-deadline:
			t.Fatal("victim never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-result:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled request did not return")
	}

	// Let the worker drain the queue; the cancelled task must be skipped.
	close(release)
	<-blockerDone
	s.Drain()
	s.Wait()
	if executed.Load() {
		t.Fatal("cancelled queued request executed anyway")
	}
}

// TestQueueFullSheds: admission is non-blocking; a full lane rejects
// with a structured 429 Rejection instead of queueing unboundedly.
func TestQueueFullSheds(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 1})
	release, blockerDone := blockWorker(t, s)
	defer func() { close(release); <-blockerDone; s.Drain(); s.Wait() }()

	// Fill the lane's single slot.
	queued := make(chan struct{}, 1)
	go s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "queued"}, func(ctx context.Context) (any, error) {
		queued <- struct{}{}
		return nil, nil
	})
	deadline := time.After(2 * time.Second)
	for s.QueueLen(PriorityNormal) == 0 {
		select {
		case <-deadline:
			t.Fatal("filler never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	_, err := s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "shed-me"}, func(ctx context.Context) (any, error) {
		t.Error("shed request executed")
		return nil, nil
	})
	var rej *Rejection
	if !errors.As(err, &rej) {
		t.Fatalf("Do returned %v, want *Rejection", err)
	}
	if rej.Code != 429 || rej.Reason != ReasonQueueFull {
		t.Fatalf("rejection = %+v, want code 429 reason queue_full", rej)
	}
	if rej.Lane != "normal" || rej.QueueCap != 1 {
		t.Fatalf("rejection lane/cap = %s/%d, want normal/1", rej.Lane, rej.QueueCap)
	}
}

// TestDrainRejectsWith503: after Drain every admission attempt is
// refused with the draining rejection.
func TestDrainRejectsWith503(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 1})
	s.Drain()
	s.Wait()
	_, err := s.Do(context.Background(), Admit{Priority: PriorityHigh, ID: "late"}, func(ctx context.Context) (any, error) {
		return nil, nil
	})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Code != 503 || rej.Reason != ReasonDraining {
		t.Fatalf("Do after Drain returned %v, want 503 draining Rejection", err)
	}
}

// TestPanicDegradesToExecError: a panicking workload (the simulated
// SIGSEGV) costs that one request, not the process.
func TestPanicDegradesToExecError(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 2, QueueDepth: 4})
	defer func() { s.Drain(); s.Wait() }()

	_, err := s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "crasher"}, func(ctx context.Context) (any, error) {
		panic("simulated SIGSEGV")
	})
	var exe *ExecError
	if !errors.As(err, &exe) {
		t.Fatalf("Do returned %v, want *ExecError", err)
	}
	if exe.Status != resilience.StatusFailed || len(exe.Crashes) != 1 || exe.Crashes[0].Kind != resilience.CrashPanic {
		t.Fatalf("ExecError = %+v, want one panic crash with status failed", exe)
	}

	// The pool survives: the next request is served normally.
	v, err := s.Do(context.Background(), Admit{Priority: PriorityNormal, ID: "after"}, func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("request after crash = (%v, %v), want (42, nil)", v, err)
	}
}

// TestPriorityLanePreference: with both lanes populated while the
// worker is busy, the high lane is served first.
func TestPriorityLanePreference(t *testing.T) {
	s := NewScheduler(SchedulerConfig{Workers: 1, QueueDepth: 4})
	release, blockerDone := blockWorker(t, s)

	order := make(chan string, 2)
	submit := func(pri Priority, name string) {
		go s.Do(context.Background(), Admit{Priority: pri, ID: name}, func(ctx context.Context) (any, error) {
			order <- name
			return nil, nil
		})
	}
	submit(PriorityLow, "low")
	deadline := time.After(2 * time.Second)
	for s.QueueLen(PriorityLow) == 0 {
		select {
		case <-deadline:
			t.Fatal("low never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	submit(PriorityHigh, "high")
	for s.QueueLen(PriorityHigh) == 0 {
		select {
		case <-deadline:
			t.Fatal("high never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	close(release)
	<-blockerDone
	first := <-order
	second := <-order
	if first != "high" || second != "low" {
		t.Fatalf("execution order = %s, %s; want high before low", first, second)
	}
	s.Drain()
	s.Wait()
}
