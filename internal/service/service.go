// Package service is the serving layer: it turns the repository's
// experiment/attack corpus into a servable workload. A bounded
// worker-pool Scheduler with priority lanes and load shedding admits
// requests; a content-addressed Cache (LRU + TTL + singleflight)
// exploits the corpus's determinism — the same experiment under the
// same data model, chaos seed/config, and code version always produces
// the same bytes, so the safe path is the fast path; and supervised
// execution (internal/resilience) turns a panicking scenario into one
// degraded request instead of a dead process. cmd/pnserve exposes the
// service over HTTP; cmd/pnload drives it closed-loop and records the
// serving-throughput trajectory in BENCH_SERVE.json.
package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/attack"
	"repro/internal/chaos"
	"repro/internal/compile"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Config assembles a Service.
type Config struct {
	// Workers/QueueDepth/RetryAfter tune the scheduler (see
	// SchedulerConfig).
	Workers    int
	QueueDepth int
	RetryAfter time.Duration
	// CacheCapacity/CacheTTL tune the result cache (see CacheConfig).
	CacheCapacity int
	CacheTTL      time.Duration
	// DisableTemplatePool turns off the image template pool. By default
	// every scenario request sources its process address space from a
	// pool of prewarmed copy-on-write templates (see mem.ImagePool), so
	// a cache miss clones a pristine image in O(pages) pointer
	// operations instead of allocating and zeroing fresh segments.
	DisableTemplatePool bool
	// DefaultDeadline bounds requests that do not set their own
	// (default 15s). The deadline covers queueing and execution.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-supplied deadlines (default 60s).
	MaxDeadline time.Duration
	// Quota arms per-tenant token-bucket admission quotas (zero value =
	// disabled; see QuotaConfig).
	Quota QuotaConfig
	// Limiter arms the adaptive concurrency limiter (TargetP99 <= 0 =
	// disabled; see LimiterConfig).
	Limiter LimiterConfig
	// Breaker arms per-tenant, per-scenario-class circuit breakers
	// (Threshold 0 = disabled; see BreakerConfig).
	Breaker BreakerConfig
	// AgingThreshold is the scheduler's starvation bound: queue wait at
	// which any request outranks strict lane order (default 1s, negative
	// disables).
	AgingThreshold time.Duration
	// Now is the admission clock seam (default time.Now); injected by
	// deterministic tests and the tenant soak.
	Now func() time.Time
	// Registry, when non-nil, receives the serving metrics (request,
	// cache, shed counters; queue and in-flight gauges; latency
	// histogram).
	Registry *obs.Registry
	// Bus, when non-nil, receives live span/heat/admission events for
	// /watch subscribers. All publishes are gated on Bus.Active(), so an
	// unwatched server pays one atomic load per seam.
	Bus *obs.Bus
	// TraceCapacity bounds the finished-trace store backing GET
	// /trace/{id} (default DefaultTraceCapacity).
	TraceCapacity int
	// PeerFetch, when non-nil, arms cross-node cache fill: on a cache
	// miss whose request carries a FillFrom peer URL (set by the cluster
	// router after a ring rebalance), the service asks the peer for its
	// cached result before computing. A successful clone is stored
	// locally and served with the CacheCloned token; any error falls
	// back to normal execution.
	PeerFetch func(ctx context.Context, peerURL, key string) (*Result, error)
	// Compiled arms the compiled-program tier (internal/compile):
	// cache-miss scenario executions without chaos or detail tracing
	// are lowered once per (scenario, defense, model) into a
	// straight-line op program and replayed through the flat dispatch
	// loop on subsequent misses. The program cache sits alongside the
	// content-addressed result cache; anything not compilable falls
	// back to the interpreted path transparently.
	Compiled bool
	// CompiledCacheCapacity bounds the compiled-program cache
	// (default 256 specializations).
	CompiledCacheCapacity int
}

func (c Config) withDefaults() Config {
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 15 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Service schedules, executes, and caches corpus requests.
type Service struct {
	cfg      Config
	sched    *Scheduler
	cache    *Cache
	reg      *obs.Registry
	pool     *mem.ImagePool
	programs *compile.Cache // non-nil only when Config.Compiled
	bus      *obs.Bus
	traces   *TraceStore
	traceSeq atomic.Uint64
}

// New builds a Service and starts its worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	describeServeMetrics(reg)
	s := &Service{
		cfg:    cfg,
		reg:    reg,
		bus:    cfg.Bus,
		traces: NewTraceStore(cfg.TraceCapacity),
		sched: NewScheduler(SchedulerConfig{
			Workers:        cfg.Workers,
			QueueDepth:     cfg.QueueDepth,
			RetryAfter:     cfg.RetryAfter,
			Quota:          cfg.Quota,
			Limiter:        cfg.Limiter,
			Breaker:        cfg.Breaker,
			AgingThreshold: cfg.AgingThreshold,
			Now:            cfg.Now,
			Metrics:        reg,
			Bus:            cfg.Bus,
		}),
	}
	s.cache = NewCache(CacheConfig{
		Capacity: cfg.CacheCapacity,
		TTL:      cfg.CacheTTL,
		OnEvent: func(event string) {
			reg.Inc(obs.MetricServeCache, obs.L("event", event))
			if cfg.Bus.Active() {
				cfg.Bus.Publish(obs.KindMetric, "", "", map[string]string{
					"name": obs.MetricServeCache, "delta": "1", "event": event})
			}
		},
	})
	if !cfg.DisableTemplatePool {
		s.pool = mem.NewImagePool()
		s.pool.OnEvent = func(event string) {
			reg.Inc(obs.MetricServePool, obs.L("event", event))
		}
		// Prewarm the canonical image configurations the defense
		// catalogue produces (only ExecStack varies; segment sizes stay
		// at their defaults), so even the very first cache miss clones
		// instead of constructing.
		s.pool.Prewarm(mem.ImageConfig{}, mem.ImageConfig{ExecStack: true})
	}
	if cfg.Compiled {
		capacity := cfg.CompiledCacheCapacity
		if capacity <= 0 {
			capacity = 256
		}
		s.programs = compile.NewCache(capacity)
	}
	return s
}

// Pool exposes the image template pool (nil when disabled). Used by
// tests to assert template isolation and by tooling to read stats.
func (s *Service) Pool() *mem.ImagePool { return s.pool }

// Programs exposes the compiled-program cache (nil when the compiled
// tier is disabled). The cluster tier calls Evict on it when a
// worker's shard assignment shrinks; tests use it to assert
// singleflight compilation and evict-while-executing safety.
func (s *Service) Programs() *compile.Cache { return s.programs }

// describeServeMetrics declares the serving metric families on reg.
func describeServeMetrics(reg *obs.Registry) {
	reg.Describe(obs.MetricServeRequests, "serving requests finished, by lane and outcome", obs.TypeCounter)
	reg.Describe(obs.MetricServeCache, "result-cache events, by event", obs.TypeCounter)
	reg.Describe(obs.MetricServeShed, "requests shed at admission, by lane and reason", obs.TypeCounter)
	reg.Describe(obs.MetricServeTenantRequests, "serving requests finished, by tenant and outcome", obs.TypeCounter)
	reg.Describe(obs.MetricServeTenantShed, "requests shed at admission, by tenant and reason", obs.TypeCounter)
	reg.Describe(obs.MetricServeAgedPromotions, "queued requests served via priority aging, by tenant", obs.TypeCounter)
	reg.Describe(obs.MetricServeLimitValue, "adaptive concurrency limit", obs.TypeGauge)
	reg.Describe(obs.MetricServeLimitOutstanding, "outstanding work under the concurrency limiter", obs.TypeGauge)
	reg.Describe(obs.MetricServeLimitEvents, "adaptive-limit adjustments, by direction", obs.TypeCounter)
	reg.Describe(obs.MetricServeBreakerEvents, "circuit-breaker transitions, by event, tenant, and class", obs.TypeCounter)
	reg.Describe(obs.MetricServePool, "image template pool events, by event", obs.TypeCounter)
	reg.Describe(obs.MetricServeQueueDepth, "admission-queue depth, by lane", obs.TypeGauge)
	reg.Describe(obs.MetricServeInflight, "requests currently executing", obs.TypeGauge)
	reg.Describe(obs.MetricServeLatency, "request execution latency in milliseconds, by lane",
		obs.TypeHistogram, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000)
	stageBuckets := []float64{0.01, 0.05, 0.25, 1, 5, 25, 100, 500, 2000}
	reg.Describe(obs.MetricServeStageQueueWait, "admission-to-worker queue wait in milliseconds, by lane",
		obs.TypeHistogram, stageBuckets...)
	reg.Describe(obs.MetricServeStageCacheLookup, "result-cache lookup time in milliseconds (hits and coalesced waits)",
		obs.TypeHistogram, stageBuckets...)
	reg.Describe(obs.MetricServeStageCacheFill, "cross-node cache fill time in milliseconds (cloning a miss from a peer)",
		obs.TypeHistogram, stageBuckets...)
	reg.Describe(obs.MetricServeStageClone, "image acquisition time in milliseconds (template clone or construction)",
		obs.TypeHistogram, stageBuckets...)
	reg.Describe(obs.MetricServeStageExecute, "corpus execution time in milliseconds",
		obs.TypeHistogram, stageBuckets...)
	reg.Describe(obs.MetricServeStageShadowCheck, "time spent in shadow write checks in milliseconds (detail mode only)",
		obs.TypeHistogram, stageBuckets...)
}

// Scheduler exposes the pool (for drain and tests).
func (s *Service) Scheduler() *Scheduler { return s.sched }

// Cache exposes the result cache (for tests and tooling).
func (s *Service) Cache() *Cache { return s.cache }

// Drain stops admitting requests and waits for in-flight work.
func (s *Service) Drain() {
	s.sched.Drain()
	s.sched.Wait()
}

// Handle validates req, applies its deadline, and serves it — from the
// cache when possible, otherwise through the scheduler. The returned
// token is one of the Cache* event values (CacheHit, CacheMiss,
// CacheCoalesced, CacheBypass).
func (s *Service) Handle(ctx context.Context, req Request) (*Result, string, error) {
	res, token, _, err := s.HandleTraced(ctx, req)
	return res, token, err
}

// Trace returns a finished request trace by ID (GET /trace/{id}).
func (s *Service) Trace(id string) (*RequestTrace, bool) { return s.traces.Get(id) }

// Bus exposes the live event bus (nil when not configured).
func (s *Service) Bus() *obs.Bus { return s.bus }

// nextTraceID mints a deterministic trace identity: a process-local
// counter, not randomness, so a deterministic-clock server streams
// byte-identical IDs across double runs.
func (s *Service) nextTraceID() string {
	return "t-" + fmt.Sprint(s.traceSeq.Add(1))
}

// HandleTraced is Handle plus request-scoped tracing: it mints (or
// honours) the trace ID, threads it through admission and execution,
// records the per-stage latency breakdown, and returns the finished
// trace alongside the result. The trace is also retained for GET
// /trace/{id}. A client-supplied TraceID (or an attached /watch
// subscriber) arms detailed per-write instrumentation for the request;
// otherwise tracing costs a handful of clock reads.
func (s *Service) HandleTraced(ctx context.Context, req Request) (*Result, string, *RequestTrace, error) {
	n, err := normalize(req)
	if err != nil {
		return nil, "", nil, err
	}

	traceID := req.TraceID
	clientTraced := traceID != ""
	if traceID == "" {
		traceID = s.nextTraceID()
	}
	rt := newRequestTrace(traceID, n.tenant, n.kind, n.id, s.cfg.Now, s.bus)
	rt.detail = clientTraced || s.bus.Active()

	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()

	execute := func() (*Result, error) {
		adm := Admit{
			Tenant:   n.tenant,
			Priority: n.priority,
			Class:    n.kind + "/" + n.id,
			ID:       n.kind + "/" + n.id,
			Trusted:  n.Admitted,
			Trace:    rt,
		}
		v, err := s.sched.Do(ctx, adm, func(ctx context.Context) (any, error) {
			return s.compute(ctx, n, rt)
		})
		if err != nil {
			return nil, err
		}
		res, ok := v.(*Result)
		if !ok {
			return nil, fmt.Errorf("service: compute returned %T, want *Result", v)
		}
		return res, nil
	}

	var res *Result
	var token string
	if n.NoCache {
		res, err = execute()
		token = CacheBypass
		if err == nil {
			s.cache.Put(n.key, res)
			s.reg.Inc(obs.MetricServeCache, obs.L("event", CacheBypass))
		}
	} else {
		lookupStart := s.cfg.Now()
		cloned := false
		miss := execute
		if n.FillFrom != "" && s.cfg.PeerFetch != nil {
			// Cross-node cache fill: this key moved shards in a ring
			// rebalance, so before computing, ask the replica that owned it
			// for its cached bytes. Only the flight leader runs this, so a
			// result is cloned (or computed) at most once fleet-wide.
			miss = func() (*Result, error) {
				fillStart := s.cfg.Now()
				if peer, ferr := s.cfg.PeerFetch(ctx, n.FillFrom, n.key); ferr == nil && peer != nil {
					cloned = true
					fillEnd := s.cfg.Now()
					rt.Stage(StageCacheFill, fillStart, fillEnd, map[string]string{"peer": n.FillFrom})
					s.reg.Observe(obs.MetricServeStageCacheFill, durMS(fillEnd.Sub(fillStart)))
					return peer, nil
				}
				return execute()
			}
		}
		res, token, err = s.cache.Do(ctx, n.key, miss)
		if token == CacheMiss && cloned {
			token = CacheCloned
			s.reg.Inc(obs.MetricServeCache, obs.L("event", CacheCloned))
		}
		if token == CacheHit || token == CacheCoalesced {
			// On a hit or coalesced wait the whole Do call is lookup; on
			// a miss this request led the execution and its time is
			// accounted by the execute/clone stages instead.
			lookupEnd := s.cfg.Now()
			rt.Stage(StageCacheLookup, lookupStart, lookupEnd, map[string]string{"token": token})
			s.reg.Observe(obs.MetricServeStageCacheLookup, durMS(lookupEnd.Sub(lookupStart)))
		}
	}

	status := "error"
	if err == nil {
		status = res.Status
	}
	rt.finish(status, token, err)
	s.traces.Put(rt)
	return res, token, rt, err
}

// compute executes one validated request on a worker goroutine. It is
// the single place the serving path calls into the corpus, and it
// checks ctx immediately so work cancelled between admission and
// dispatch never runs.
func (s *Service) compute(ctx context.Context, n *request, rt *RequestTrace) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := s.cfg.Now()
	res := &Result{
		Key:     n.key,
		Kind:    n.kind,
		ID:      n.id,
		Version: CodeVersion,
	}
	if n.Repeat > 1 {
		res.Repeat = n.Repeat
	}
	switch n.kind {
	case "experiment":
		// Repeat > 1 is a measurement loop: the run is deterministic, so
		// every iteration produces the same table and only the aggregate
		// compute time changes.
		for i := 0; i < n.Repeat; i++ {
			t, err := n.exp.Run()
			if err != nil {
				return nil, err
			}
			res.Status = "ok"
			res.Table = t.Data()
		}
	default:
		totalInjected := 0
		for i := 0; i < n.Repeat; i++ {
			o, injected, err := s.runScenario(n, rt, start)
			if err != nil {
				return nil, err
			}
			totalInjected += injected
			res.Defense = n.Defense
			res.Model = n.Model
			res.Seed = n.Seed
			res.ChaosProb = n.ChaosProb
			res.Faults = n.Faults
			res.Status = o.Status()
			res.Details = o.Details
			res.Metrics = o.Metrics
			res.Table = outcomeTable(o, n.Model).Data()
		}
		res.InjectedFaults = totalInjected
	}
	end := s.cfg.Now()
	res.ComputeNS = end.Sub(start).Nanoseconds()
	rt.Stage(StageExecute, start, end, nil)
	s.reg.Observe(obs.MetricServeStageExecute, durMS(end.Sub(start)))
	return res, nil
}

// runScenario executes one attack scenario under its defense config
// and optional chaos overlay. Everything is request-local — injector,
// process hook, defense config copy, observers — so scenario requests
// are safe to run concurrently, unlike the process-global
// instrumentation seams cmd/pntrace uses. The image template pool is
// shared, but only through immutable copy-on-write pages: every
// process clones its address space from a pristine template and copies
// any page before writing it.
//
// execStart is when the worker began this request: the window from it
// to the first process construction is the clone stage (template clone
// or image construction plus defense wiring).
func (s *Service) runScenario(n *request, rt *RequestTrace, execStart time.Time) (*attack.Outcome, int, error) {
	// Compiled fast path: chaos-free, non-detail scenario runs replay a
	// cached straight-line program instead of interpreting. Chaos
	// injection and detail tracing need the interpreted machinery (they
	// instrument the run as it happens); anything the compiler rejects
	// falls through to interpretation below.
	if s.programs != nil && n.ChaosProb == 0 && !rt.Detail() {
		if o, ok := s.runCompiled(n, rt, execStart); ok {
			return o, 0, nil
		}
	}

	cfg := n.defCfg // copy; the catalogue config stays pristine
	cfg.Pool = s.pool
	var inj *chaos.Injector
	if n.ChaosProb > 0 {
		inj = chaos.New(chaos.Config{
			Seed:  chaos.DeriveSeed(n.Seed, n.id, n.Defense, n.Model),
			Prob:  n.ChaosProb,
			Kinds: n.kinds,
			// Faults surface as synchronous signals (panics); the
			// scheduler's supervision catches them — the SIGSEGV -> one
			// degraded request path.
			PanicOnFault: true,
		})
		prev := cfg.OnProcess
		cfg.OnProcess = func(p *machine.Process) {
			if prev != nil {
				prev(p)
			}
			inj.Arm(p.Mem)
		}
	}

	// Request-scoped observation. The clone stage (execute start to
	// first process) is recorded whenever a trace exists; the per-write
	// instrumentation — shadow-check timing, heat-tile streaming, live
	// machine events — only in detail mode, because it costs clock reads
	// or map updates on the hot write path.
	var cloneOnce sync.Once
	var shadows []*timedShadow
	var shadowMu sync.Mutex
	var hs *heatStream
	if rt.Detail() && s.bus.Active() {
		hs = newHeatStream(s.bus, rt.Ref(), rt.Tenant)
	}
	if rt != nil {
		prev := cfg.OnProcess
		bus := s.bus
		cfg.OnProcess = func(p *machine.Process) {
			if prev != nil {
				prev(p)
			}
			cloneOnce.Do(func() {
				end := s.cfg.Now()
				rt.Stage(StageClone, execStart, end, nil)
				s.reg.Observe(obs.MetricServeStageClone, durMS(end.Sub(execStart)))
			})
			if rt.Detail() {
				if sh := p.Mem.Shadow(); sh != nil {
					ts := &timedShadow{inner: sh, now: s.cfg.Now}
					p.Mem.SetShadow(ts)
					shadowMu.Lock()
					shadows = append(shadows, ts)
					shadowMu.Unlock()
				}
			}
			if hs != nil {
				hs.publishSegments(p.Mem.Segments())
				p.Mem.SetAccessObserver(hs.record)
				trace, tenant := rt.Ref(), rt.Tenant
				p.SetEventObserver(func(ev machine.Event) {
					if bus.Active() {
						publishMachineEvent(bus, trace, tenant, ev)
					}
				})
			}
		}
	}

	o, err := n.scenario.Run(cfg)
	if hs != nil {
		hs.flush()
	}
	shadowMu.Lock()
	var shadowTotal time.Duration
	var shadowChecks uint64
	for _, ts := range shadows {
		d, c := ts.totals()
		shadowTotal += d
		shadowChecks += c
	}
	shadowMu.Unlock()
	if shadowChecks > 0 {
		end := s.cfg.Now()
		rt.Stage(StageShadowCheck, end.Add(-shadowTotal), end,
			map[string]string{"checks": fmt.Sprint(shadowChecks)})
		s.reg.Observe(obs.MetricServeStageShadowCheck, durMS(shadowTotal))
	}
	injected := 0
	if inj != nil {
		injected = inj.Count()
	}
	return o, injected, err
}

// runCompiled serves one scenario request from the compiled-program
// cache: compile on first use (singleflight per specialization), then
// replay through the flat dispatch loop with pool-cloned images. It
// reports ok=false — interpret instead — when the scenario is not
// compilable or the replay fails; both are safe to fall through
// because replay mutates only its own freshly acquired images.
func (s *Service) runCompiled(n *request, rt *RequestTrace, execStart time.Time) (*attack.Outcome, bool) {
	cfg := n.defCfg
	cfg.Pool = s.pool
	cfg.Compiled = true
	sp, err := s.programs.Get(n.scenario, cfg)
	if err != nil {
		return nil, false
	}
	o, _, err := sp.Run(s.pool)
	if err != nil {
		return nil, false
	}
	if rt != nil {
		end := s.cfg.Now()
		rt.Stage(StageClone, execStart, end, map[string]string{"compiled": "true"})
		s.reg.Observe(obs.MetricServeStageClone, durMS(end.Sub(execStart)))
	}
	return o, true
}
