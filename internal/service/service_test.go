package service

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/obs"
)

func newTestService(t *testing.T) *Service {
	t.Helper()
	s := New(Config{Workers: 4, QueueDepth: 32, CacheCapacity: 64, Registry: obs.NewRegistry()})
	t.Cleanup(s.Drain)
	return s
}

func TestExperimentRequestServedAndCached(t *testing.T) {
	s := newTestService(t)
	req := Request{Experiment: "E1"}

	res, tok, err := s.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tok != CacheMiss {
		t.Fatalf("first request token = %q, want miss", tok)
	}
	if res.Kind != "experiment" || res.ID != "E1" || res.Status != "ok" {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Table.Rows) == 0 {
		t.Fatal("experiment result carries an empty table")
	}
	if res.Version != CodeVersion {
		t.Fatalf("result version = %q, want %q", res.Version, CodeVersion)
	}

	res2, tok2, err := s.Handle(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if tok2 != CacheHit {
		t.Fatalf("second request token = %q, want hit", tok2)
	}
	if res2.Key != res.Key {
		t.Fatalf("cache hit key %s != original %s", res2.Key, res.Key)
	}
	if got := s.reg.Value(obs.MetricServeCache, obs.L("event", CacheHit)); got != 1 {
		t.Fatalf("cache hit counter = %g, want 1", got)
	}
	if got := s.reg.Value(obs.MetricServeRequests, obs.L("lane", "normal"), obs.L("outcome", "ok")); got != 1 {
		t.Fatalf("ok request counter = %g, want 1 (hit must not re-execute)", got)
	}
}

func TestScenarioRequestOutcome(t *testing.T) {
	s := newTestService(t)
	res, _, err := s.Handle(context.Background(), Request{Scenario: "bss-overflow", Model: "LP64"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != "scenario" || res.ID != "bss-overflow" {
		t.Fatalf("result = %+v", res)
	}
	if res.Status != "SUCCESS" {
		t.Fatalf("undefended bss overflow status = %q, want SUCCESS", res.Status)
	}
	if res.Defense != "none" || res.Model != "LP64" {
		t.Fatalf("normalized defense/model = %s/%s, want none/LP64", res.Defense, res.Model)
	}
	if len(res.Table.Rows) == 0 || len(res.Metrics) == 0 {
		t.Fatal("scenario result missing table or metrics")
	}

	// The same attack under the full paper defense suite is stopped.
	res2, _, err := s.Handle(context.Background(), Request{Scenario: "bss-overflow", Defense: "checked-pnew"})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status == "SUCCESS" {
		t.Fatalf("checked-pnew status = %q, want a non-SUCCESS verdict", res2.Status)
	}
}

func TestScenarioChaosSeedsDoNotShareCacheEntries(t *testing.T) {
	s := newTestService(t)
	base := Request{Scenario: "stack-ret", ChaosProb: 0.01}

	r1 := base
	r1.Seed = 1
	res1, tok1, err := s.Handle(context.Background(), r1)
	if err != nil {
		t.Fatal(err)
	}
	r2 := base
	r2.Seed = 2
	res2, tok2, err := s.Handle(context.Background(), r2)
	if err != nil {
		t.Fatal(err)
	}
	if tok1 != CacheMiss || tok2 != CacheMiss {
		t.Fatalf("tokens = %q, %q; differing seeds must both miss", tok1, tok2)
	}
	if res1.Key == res2.Key {
		t.Fatal("differing chaos seeds shared a cache entry")
	}
	// Repeating seed 1 is a hit on seed 1's entry only.
	res1b, tok1b, err := s.Handle(context.Background(), r1)
	if err != nil {
		t.Fatal(err)
	}
	if tok1b != CacheHit || res1b.Key != res1.Key {
		t.Fatalf("repeat of seed 1 = (%q, %s), want hit on %s", tok1b, res1b.Key, res1.Key)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestService(t)
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown experiment", Request{Experiment: "E99"}},
		{"unknown scenario", Request{Scenario: "no-such-attack"}},
		{"unknown defense", Request{Scenario: "bss-overflow", Defense: "asan"}},
		{"unknown model", Request{Scenario: "bss-overflow", Model: "ILP64"}},
		{"both kinds", Request{Experiment: "E1", Scenario: "bss-overflow"}},
		{"neither kind", Request{}},
		{"chaos on experiment", Request{Experiment: "E1", ChaosProb: 0.01}},
		{"prob out of range", Request{Scenario: "bss-overflow", ChaosProb: 1.5}},
		{"bad priority", Request{Experiment: "E1", Priority: "urgent"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := s.Handle(context.Background(), tc.req)
			var bad *BadRequest
			if !errors.As(err, &bad) {
				t.Fatalf("Handle(%+v) err = %v, want *BadRequest", tc.req, err)
			}
		})
	}
}

func TestNoCacheBypassRefreshesStore(t *testing.T) {
	s := newTestService(t)
	req := Request{Experiment: "E5"}
	if _, tok, err := s.Handle(context.Background(), req); err != nil || tok != CacheMiss {
		t.Fatalf("first = (%q, %v), want miss", tok, err)
	}
	bypass := req
	bypass.NoCache = true
	if _, tok, err := s.Handle(context.Background(), bypass); err != nil || tok != CacheBypass {
		t.Fatalf("no_cache = (%q, %v), want bypass", tok, err)
	}
	// The bypass refreshed the entry; plain requests still hit.
	if _, tok, err := s.Handle(context.Background(), req); err != nil || tok != CacheHit {
		t.Fatalf("after bypass = (%q, %v), want hit", tok, err)
	}
}

// TestConcurrentMixedWorkload is the race gate for the serving path:
// experiments and (chaos-injected) scenarios run through the pool from
// many goroutines at once.
func TestConcurrentMixedWorkload(t *testing.T) {
	s := New(Config{Workers: 8, QueueDepth: 128, CacheCapacity: 64, Registry: obs.NewRegistry()})
	defer s.Drain()

	reqs := []Request{
		{Experiment: "E1"},
		{Experiment: "E5"},
		{Experiment: "E9"},
		{Scenario: "bss-overflow"},
		{Scenario: "stack-ret", Defense: "stackguard"},
		{Scenario: "heap-overflow", Model: "LP64", Priority: "high"},
		{Scenario: "memleak", ChaosProb: 0.002, Seed: 7, Priority: "low"},
	}
	var wg sync.WaitGroup
	const rounds = 6
	for round := 0; round < rounds; round++ {
		for _, req := range reqs {
			wg.Add(1)
			go func(req Request) {
				defer wg.Done()
				res, _, err := s.Handle(context.Background(), req)
				if err != nil {
					// A chaos-injected request may legitimately die from
					// its own injected fault: that is a degraded request
					// (structured ExecError), not a serving bug.
					var exe *ExecError
					if req.ChaosProb > 0 && errors.As(err, &exe) {
						return
					}
					t.Errorf("Handle(%+v): %v", req, err)
					return
				}
				if res.Status == "" {
					t.Errorf("Handle(%+v): empty status", req)
				}
			}(req)
		}
	}
	wg.Wait()

	// The repeated workload must have been largely served from cache:
	// at most one execution per distinct request, everything else
	// hit/coalesced.
	reg := s.reg
	hits := reg.Value(obs.MetricServeCache, obs.L("event", CacheHit)) +
		reg.Value(obs.MetricServeCache, obs.L("event", CacheCoalesced))
	misses := reg.Value(obs.MetricServeCache, obs.L("event", CacheMiss))
	// Every distinct request executes at most once per round it failed
	// in; the chaos request may fail (and so miss) every round, the six
	// deterministic ones at most once each.
	if max := float64(len(reqs) - 1 + rounds); misses > max {
		t.Fatalf("misses = %g, want <= %g (singleflight + cache)", misses, max)
	}
	if want := float64((len(reqs) - 1) * (rounds - 1)); hits < want {
		t.Fatalf("hits+coalesced = %g, want >= %g", hits, want)
	}
}
