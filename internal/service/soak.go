package service

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// SoakSchemaVersion versions the BENCH_TENANT.json shape.
const SoakSchemaVersion = "pnserve-tenant/v1"

// TenantSpec describes one simulated tenant's offered load.
type TenantSpec struct {
	Name string `json:"name"`
	// Pattern shapes arrivals: "steady" spaces them uniformly; "bursty"
	// packs each second's worth of arrivals into the first 100ms of the
	// second (a spiky client that leans on its burst allowance).
	Pattern string `json:"pattern"`
	// Rate is the offered load in requests per second.
	Rate float64 `json:"rate"`
	// Priority is the lane requests target ("high", "normal", "low").
	Priority string `json:"priority"`
	// LowEvery, when > 0, sends every Nth request to the low lane
	// regardless of Priority — background work mixed into a workload.
	LowEvery int `json:"low_every,omitempty"`
	// ChaosProb is the probability one execution dies (panic-equivalent)
	// and feeds the tenant's circuit breaker.
	ChaosProb float64 `json:"chaos_prob,omitempty"`
}

// SoakConfig parameterizes the deterministic multi-tenant soak.
type SoakConfig struct {
	// Seed drives every random draw; equal seeds produce byte-equal
	// reports.
	Seed int64 `json:"seed"`
	// Duration is the virtual length of the arrival window.
	Duration time.Duration `json:"-"`
	// Workers is the simulated pool size.
	Workers int `json:"workers"`
	// QueueDepth bounds each lane, as in SchedulerConfig.
	QueueDepth int `json:"queue_depth"`
	// ServiceMin/ServiceMax bound the per-request service time, drawn
	// uniformly.
	ServiceMin time.Duration `json:"-"`
	ServiceMax time.Duration `json:"-"`
	// Quota/Breaker/Limiter/Aging arm the same admission components the
	// live scheduler composes.
	Quota   QuotaConfig   `json:"-"`
	Breaker BreakerConfig `json:"-"`
	Limiter LimiterConfig `json:"-"`
	Aging   time.Duration `json:"-"`
	// StarvationBudget is the queue wait past which a served request
	// counts as starved (default 10x Aging, or 1s when aging is off).
	StarvationBudget time.Duration `json:"-"`
	Tenants          []TenantSpec  `json:"tenants"`
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ServiceMin <= 0 {
		c.ServiceMin = 8 * time.Millisecond
	}
	if c.ServiceMax < c.ServiceMin {
		c.ServiceMax = 12 * time.Millisecond
	}
	if c.StarvationBudget <= 0 {
		if c.Aging > 0 {
			c.StarvationBudget = 10 * c.Aging
		} else {
			c.StarvationBudget = time.Second
		}
	}
	return c
}

// DefaultSoakConfig is the adversarial three-tenant scenario the CI
// gate runs: a greedy tenant hammering the high lane far past its
// quota, a bursty tenant leaning on its burst allowance, and a
// well-behaved tenant offering a modest mixed-priority load that must
// keep flowing regardless.
func DefaultSoakConfig(seed int64) SoakConfig {
	return SoakConfig{
		Seed:       seed,
		Duration:   10 * time.Second,
		Workers:    4,
		QueueDepth: 64,
		ServiceMin: 8 * time.Millisecond,
		ServiceMax: 12 * time.Millisecond,
		Quota:      QuotaConfig{Rate: 150, Burst: 75},
		Breaker:    BreakerConfig{Threshold: 5, Cooldown: 500 * time.Millisecond},
		Limiter:    LimiterConfig{TargetP99: 250 * time.Millisecond, MaxLimit: 4 + 3*64},
		Aging:      100 * time.Millisecond,
		Tenants: []TenantSpec{
			{Name: "greedy", Pattern: "steady", Rate: 500, Priority: "high"},
			{Name: "bursty", Pattern: "bursty", Rate: 100, Priority: "normal"},
			{Name: "wellbehaved", Pattern: "steady", Rate: 50, Priority: "normal", LowEvery: 4},
		},
	}
}

// TenantStats is one tenant's soak outcome.
type TenantStats struct {
	Name     string `json:"name"`
	Pattern  string `json:"pattern"`
	Offered  int    `json:"offered"`
	Admitted int    `json:"admitted"`
	// Completed excludes chaos deaths; GoodputRPS is Completed over the
	// arrival window.
	Completed  int            `json:"completed"`
	Failed     int            `json:"failed"`
	Shed       map[string]int `json:"shed,omitempty"`
	GoodputRPS float64        `json:"goodput_rps"`
	// FairShare is Completed/Offered — the fraction of this tenant's
	// offered load the service actually finished.
	FairShare float64 `json:"fair_share"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
}

// SoakReport is the BENCH_TENANT.json payload.
type SoakReport struct {
	SchemaVersion string        `json:"schema_version"`
	Seed          int64         `json:"seed"`
	DurationMS    int64         `json:"duration_ms"`
	Workers       int           `json:"workers"`
	QueueDepth    int           `json:"queue_depth"`
	QuotaRate     float64       `json:"quota_rate"`
	QuotaBurst    float64       `json:"quota_burst"`
	AgingMS       int64         `json:"aging_ms"`
	Tenants       []TenantStats `json:"tenants"`
	// AgedPromotions counts queue entries served via priority aging.
	AgedPromotions uint64 `json:"aged_promotions"`
	// StarvationRatio is, over admitted low-lane requests, the fraction
	// that waited past the starvation budget (or were never served). The
	// CI gate requires exactly 0.
	StarvationRatio float64 `json:"starvation_ratio"`
	LowAdmitted     int     `json:"low_admitted"`
	LowStarved      int     `json:"low_starved"`
	// BreakerOpens counts open transitions across all (tenant, class)
	// breakers.
	BreakerOpens int `json:"breaker_opens"`
}

// soakArrival is one offered request.
type soakArrival struct {
	at       time.Duration // virtual offset of arrival
	tenant   int           // index into cfg.Tenants
	priority Priority
}

// arrivalSchedule lays out every tenant's offered requests over the
// window, deterministically.
func arrivalSchedule(cfg SoakConfig) []soakArrival {
	var all []soakArrival
	for ti, spec := range cfg.Tenants {
		if spec.Rate <= 0 {
			continue
		}
		base, _ := ParsePriority(spec.Priority)
		n := int(spec.Rate * cfg.Duration.Seconds())
		for i := 0; i < n; i++ {
			var at time.Duration
			switch spec.Pattern {
			case "bursty":
				// Pack each second's arrivals into its first 100ms.
				perSec := int(spec.Rate)
				sec := i / perSec
				within := i % perSec
				at = time.Duration(sec)*time.Second +
					time.Duration(float64(within)/float64(perSec)*float64(100*time.Millisecond))
			default: // steady
				at = time.Duration(float64(i) / spec.Rate * float64(time.Second))
			}
			pri := base
			if spec.LowEvery > 0 && (i+1)%spec.LowEvery == 0 {
				pri = PriorityLow
			}
			all = append(all, soakArrival{at: at, tenant: ti, priority: pri})
		}
	}
	// Stable order: by time, then tenant index (tenant order in the
	// config is the tie-break, so the schedule is reproducible).
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].tenant < all[j].tenant
	})
	return all
}

// soakJob is one admitted request flowing through the simulated pool.
type soakJob struct {
	tenant   int
	priority Priority
	enq      time.Duration // arrival/admission instant
	start    time.Duration // dispatch instant (start - enq is the queue wait)
}

// RunTenantSoak runs the adversarial multi-tenant soak as a
// discrete-event simulation on a virtual clock. It composes the same
// admission components the live scheduler uses — TenantQuotas,
// fairQueue, Limiter, breakerSet — but drives them synchronously, so
// for a fixed seed the report is byte-deterministic: no wall clock, no
// goroutine interleaving, no map-order dependence.
func RunTenantSoak(cfg SoakConfig) *SoakReport {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	epoch := time.Unix(1_700_000_000, 0)
	var cur time.Duration // virtual now
	now := func() time.Time { return epoch.Add(cur) }

	quotas := NewTenantQuotas(cfg.Quota, now)
	limiter := NewLimiter(cfg.Limiter)
	breakerOpens := 0
	bcfg := cfg.Breaker
	bcfg.OnEvent = func(event, tenant, class string) {
		if event == "open" {
			breakerOpens++
		}
	}
	breakers := newBreakerSet(bcfg, now)
	fq := newFairQueue(cfg.QueueDepth, cfg.Aging, cfg.Quota.WeightFor, now)

	arrivals := arrivalSchedule(cfg)

	stats := make([]TenantStats, len(cfg.Tenants))
	latencies := make([][]float64, len(cfg.Tenants))
	for i, spec := range cfg.Tenants {
		stats[i] = TenantStats{Name: spec.Name, Pattern: spec.Pattern, Shed: map[string]int{}}
	}
	lowAdmitted, lowStarved := 0, 0

	// Worker pool: busyUntil per worker plus the job it finishes then.
	type workerState struct {
		busyUntil time.Duration
		job       *soakJob
	}
	workers := make([]workerState, cfg.Workers)

	finish := func(w *workerState) {
		j := w.job
		w.job = nil
		spec := cfg.Tenants[j.tenant]
		st := &stats[j.tenant]
		lat := w.busyUntil - j.enq
		limiter.Release(lat, epoch.Add(w.busyUntil))
		if j.priority == PriorityLow && j.start-j.enq > cfg.StarvationBudget {
			lowStarved++
		}
		if spec.ChaosProb > 0 && rng.Float64() < spec.ChaosProb {
			breakers.failure(spec.Name, "scenario/soak")
			st.Failed++
			return
		}
		breakers.success(spec.Name, "scenario/soak")
		st.Completed++
		latencies[j.tenant] = append(latencies[j.tenant], float64(lat.Microseconds())/1000)
	}

	// step advances the pool at virtual time t: first harvest finished
	// workers (oldest completion first, worker index as tie-break), then
	// dispatch queued work onto free workers.
	step := func(t time.Duration) {
		cur = t
		for {
			// Complete the earliest finished worker, repeatedly: a worker
			// freed at t1 < t may pick up queued work and finish again
			// before t.
			best := -1
			for wi := range workers {
				if workers[wi].job != nil && workers[wi].busyUntil <= t {
					if best == -1 || workers[wi].busyUntil < workers[best].busyUntil {
						best = wi
					}
				}
			}
			if best >= 0 {
				// Rewind the clock to the completion instant so refills,
				// aging, and breaker cooldowns see the true time course.
				saved := cur
				cur = workers[best].busyUntil
				finish(&workers[best])
				// The freed worker immediately pulls the next queued entry.
				if e := fq.tryPop(); e != nil {
					j := e.t.soak
					j.start = cur
					svc := cfg.ServiceMin + time.Duration(rng.Int63n(int64(cfg.ServiceMax-cfg.ServiceMin)+1))
					workers[best].job = j
					workers[best].busyUntil = cur + svc
				}
				cur = saved
				continue
			}
			break
		}
		// Idle workers pull queued work at the current instant.
		for wi := range workers {
			if workers[wi].job != nil {
				continue
			}
			e := fq.tryPop()
			if e == nil {
				break
			}
			j := e.t.soak
			j.start = cur
			svc := cfg.ServiceMin + time.Duration(rng.Int63n(int64(cfg.ServiceMax-cfg.ServiceMin)+1))
			workers[wi].job = j
			workers[wi].busyUntil = cur + svc
		}
	}

	for _, a := range arrivals {
		step(a.at)
		spec := cfg.Tenants[a.tenant]
		st := &stats[a.tenant]
		st.Offered++
		if ok, _ := breakers.allow(spec.Name, "scenario/soak"); !ok {
			st.Shed[ReasonBreakerOpen]++
			continue
		}
		if ok, _ := quotas.TryTake(spec.Name); !ok {
			st.Shed[ReasonQuota]++
			continue
		}
		if !limiter.TryAcquire() {
			quotas.Refund(spec.Name)
			st.Shed[ReasonLimiter]++
			continue
		}
		j := &soakJob{tenant: a.tenant, priority: a.priority, enq: a.at}
		t := &task{adm: Admit{Tenant: spec.Name, Priority: a.priority}, soak: j}
		if _, res := fq.push(t, spec.Name, a.priority); res != pushOK {
			quotas.Refund(spec.Name)
			limiter.Cancel()
			st.Shed[ReasonQueueFull]++
			continue
		}
		st.Admitted++
		if a.priority == PriorityLow {
			lowAdmitted++
		}
		step(a.at) // newly queued work may start immediately
	}

	// Drain: keep stepping until the queue and every worker are idle.
	for t := cfg.Duration; ; t += time.Millisecond {
		step(t)
		busy := false
		for wi := range workers {
			if workers[wi].job != nil {
				busy = true
				break
			}
		}
		if !busy && fq.tryPop() == nil {
			break
		}
		if t > cfg.Duration+time.Minute {
			// Safety valve; should be unreachable.
			break
		}
	}

	rep := &SoakReport{
		SchemaVersion:  SoakSchemaVersion,
		Seed:           cfg.Seed,
		DurationMS:     cfg.Duration.Milliseconds(),
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		QuotaRate:      cfg.Quota.Rate,
		QuotaBurst:     cfg.Quota.withDefaults().Burst,
		AgingMS:        cfg.Aging.Milliseconds(),
		AgedPromotions: fq.Promotions(),
		LowAdmitted:    lowAdmitted,
		LowStarved:     lowStarved,
		BreakerOpens:   breakerOpens,
	}
	for i := range stats {
		st := &stats[i]
		st.GoodputRPS = round3(float64(st.Completed) / cfg.Duration.Seconds())
		if st.Offered > 0 {
			st.FairShare = round3(float64(st.Completed) / float64(st.Offered))
		}
		st.P50MS = round3(percentile(latencies[i], 0.50))
		st.P95MS = round3(percentile(latencies[i], 0.95))
		st.P99MS = round3(percentile(latencies[i], 0.99))
		if len(st.Shed) == 0 {
			st.Shed = nil
		}
		rep.Tenants = append(rep.Tenants, *st)
	}
	if lowAdmitted > 0 {
		rep.StarvationRatio = round3(float64(lowStarved) / float64(lowAdmitted))
	}
	return rep
}

// percentile is nearest-rank on a copy of samples.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// TenantByName finds one tenant's stats in a report.
func (r *SoakReport) TenantByName(name string) (*TenantStats, error) {
	for i := range r.Tenants {
		if r.Tenants[i].Name == name {
			return &r.Tenants[i], nil
		}
	}
	return nil, fmt.Errorf("soak report has no tenant %q", name)
}
