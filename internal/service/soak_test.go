package service

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestSoakByteDeterministic: equal seeds produce byte-equal reports —
// the property the CI gate relies on to diff two runs.
func TestSoakByteDeterministic(t *testing.T) {
	a, err := json.MarshalIndent(RunTenantSoak(DefaultSoakConfig(42)), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(RunTenantSoak(DefaultSoakConfig(42)), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two soaks with the same seed produced different bytes")
	}
	c, _ := json.MarshalIndent(RunTenantSoak(DefaultSoakConfig(43)), "", "  ")
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports (seed not plumbed)")
	}
}

// TestSoakFairnessGates: the adversarial three-tenant scenario meets
// the issue's acceptance gates — the well-behaved tenant keeps >= 80%
// of its offered goodput while the greedy tenant is rate-limited, and
// nothing starves.
func TestSoakFairnessGates(t *testing.T) {
	rep := RunTenantSoak(DefaultSoakConfig(42))

	well, err := rep.TenantByName("wellbehaved")
	if err != nil {
		t.Fatal(err)
	}
	if well.FairShare < 0.8 {
		t.Fatalf("well-behaved fair share = %g, want >= 0.8", well.FairShare)
	}

	greedy, err := rep.TenantByName("greedy")
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Shed[ReasonQuota] == 0 {
		t.Fatal("greedy tenant was never quota-limited")
	}
	if greedy.Completed >= greedy.Offered {
		t.Fatal("greedy tenant completed its entire overload")
	}

	if rep.StarvationRatio != 0 {
		t.Fatalf("starvation ratio = %g (starved %d of %d), want 0",
			rep.StarvationRatio, rep.LowStarved, rep.LowAdmitted)
	}
	if rep.LowAdmitted == 0 {
		t.Fatal("no low-priority work admitted; the starvation gate is vacuous")
	}
	for _, ts := range rep.Tenants {
		if ts.Completed > 0 && ts.P99MS <= 0 {
			t.Fatalf("tenant %s has completions but no p99", ts.Name)
		}
	}
}

// TestSoakChaosFeedsBreaker: a tenant whose executions keep dying trips
// its circuit breaker, which sheds with breaker_open instead of
// wasting workers.
func TestSoakChaosFeedsBreaker(t *testing.T) {
	cfg := DefaultSoakConfig(7)
	cfg.Tenants = append(cfg.Tenants, TenantSpec{
		Name: "crashy", Pattern: "steady", Rate: 100, Priority: "normal", ChaosProb: 0.9,
	})
	rep := RunTenantSoak(cfg)
	if rep.BreakerOpens == 0 {
		t.Fatal("chaos tenant never opened its breaker")
	}
	crashy, err := rep.TenantByName("crashy")
	if err != nil {
		t.Fatal(err)
	}
	if crashy.Shed[ReasonBreakerOpen] == 0 {
		t.Fatal("open breaker never shed a crashy request")
	}
	// The breaker isolates: other tenants never see breaker_open.
	for _, name := range []string{"greedy", "bursty", "wellbehaved"} {
		ts, err := rep.TenantByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if ts.Shed[ReasonBreakerOpen] != 0 {
			t.Fatalf("tenant %s shed by another tenant's breaker", name)
		}
	}
}

// TestSoakAgingPromotes: the default scenario's mixed low-priority work
// behind a greedy high-priority stream exercises the aging path.
func TestSoakAgingPromotes(t *testing.T) {
	cfg := DefaultSoakConfig(42)
	rep := RunTenantSoak(cfg)
	if rep.AgedPromotions == 0 {
		t.Skip("no promotions at this load; aging untested here (covered by fairqueue tests)")
	}
}

// TestSoakShortWindow: a 1s window still produces a sane report (the
// smoke the CI job uses to keep runtime down).
func TestSoakShortWindow(t *testing.T) {
	cfg := DefaultSoakConfig(1)
	cfg.Duration = time.Second
	rep := RunTenantSoak(cfg)
	if rep.DurationMS != 1000 || rep.SchemaVersion != SoakSchemaVersion {
		t.Fatalf("report header = %+v", rep)
	}
	total := 0
	for _, ts := range rep.Tenants {
		shed := 0
		for _, n := range ts.Shed {
			shed += n
		}
		if ts.Offered != ts.Admitted+shed {
			t.Fatalf("tenant %s: offered %d != admitted %d + shed %d", ts.Name, ts.Offered, ts.Admitted, shed)
		}
		if ts.Admitted != ts.Completed+ts.Failed {
			t.Fatalf("tenant %s: admitted %d != completed %d + failed %d (work lost)",
				ts.Name, ts.Admitted, ts.Completed, ts.Failed)
		}
		total += ts.Offered
	}
	if total == 0 {
		t.Fatal("empty schedule")
	}
}
