package service

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
)

// VirtualClock is a deterministic logical clock for the Config.Now
// seam: every read advances time by one millisecond from the Unix
// epoch. Under it, every duration in traces and streamed events is a
// count of clock reads — synthetic, but byte-identical across runs of
// the same sequential request sequence (pnserve -deterministic, the
// CI watch-smoke double-run gate).
type VirtualClock struct {
	ticks atomic.Int64
}

// NewVirtualClock builds a clock starting at the epoch.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now advances the clock one millisecond and returns it.
func (c *VirtualClock) Now() time.Time {
	return time.Unix(0, c.ticks.Add(1)*int64(time.Millisecond))
}

// Stage names of the per-request latency breakdown. Each has a
// matching pn_serve_stage_* histogram family and appears as a child
// span of the request's trace root.
const (
	StageQueueWait   = "queue_wait"
	StageCacheLookup = "cache_lookup"
	StageCacheFill   = "cache_fill"
	StageClone       = "clone"
	StageExecute     = "execute"
	StageShadowCheck = "shadow_check"
)

// TraceSpan is one node of a finished span tree: offsets are
// milliseconds from the trace root's start, read from the service
// clock (so deterministic under an injected virtual clock).
type TraceSpan struct {
	Name     string            `json:"name"`
	StartMS  float64           `json:"start_ms"`
	DurMS    float64           `json:"dur_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*TraceSpan      `json:"children,omitempty"`
}

// RequestTrace accumulates one request's span tree while it is in
// flight and freezes into the GET /trace/{id} JSON shape at finish.
// Every stage-recording method is nil-safe, so untraced paths (the
// deterministic tenant soak, direct Scheduler users) pass nil and pay
// one pointer check.
type RequestTrace struct {
	Schema  string             `json:"schema"`
	TraceID string             `json:"trace_id"`
	Tenant  string             `json:"tenant"`
	Kind    string             `json:"kind"`
	ID      string             `json:"id"`
	Status  string             `json:"status"`
	Cache   string             `json:"cache,omitempty"`
	Error   string             `json:"error,omitempty"`
	StageMS map[string]float64 `json:"stage_ms"`
	Root    *TraceSpan         `json:"root"`

	mu    sync.Mutex
	now   func() time.Time
	start time.Time
	bus   *obs.Bus
	// detail arms the expensive per-write instrumentation (shadow-check
	// timing, heat-tile streaming): set when the client supplied its own
	// X-PN-Trace-Id or a /watch subscriber is attached.
	detail bool
}

func newRequestTrace(id, tenant, kind, workID string, now func() time.Time, bus *obs.Bus) *RequestTrace {
	rt := &RequestTrace{
		Schema:  obs.WatchSchema,
		TraceID: id,
		Tenant:  tenant,
		Kind:    kind,
		ID:      workID,
		StageMS: make(map[string]float64),
		Root:    &TraceSpan{Name: "request", Attrs: map[string]string{"kind": kind, "id": workID}},
		now:     now,
		start:   now(),
		bus:     bus,
	}
	if bus.Active() {
		bus.Publish(obs.KindSpanStart, id, tenant,
			map[string]string{"span": "request", "kind": kind, "id": workID})
	}
	return rt
}

// Ref returns the trace ID, or "" for a nil trace (the scheduler's
// soak path).
func (rt *RequestTrace) Ref() string {
	if rt == nil {
		return ""
	}
	return rt.TraceID
}

// Detail reports whether per-write instrumentation is armed.
func (rt *RequestTrace) Detail() bool { return rt != nil && rt.detail }

func durMS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Stage records one completed stage as a child span of the root and
// folds its duration into the stage breakdown.
func (rt *RequestTrace) Stage(name string, begin, end time.Time, attrs map[string]string) {
	if rt == nil {
		return
	}
	startMS := durMS(begin.Sub(rt.start))
	dur := durMS(end.Sub(begin))
	rt.mu.Lock()
	rt.Root.Children = append(rt.Root.Children, &TraceSpan{
		Name: name, StartMS: startMS, DurMS: dur, Attrs: attrs,
	})
	rt.StageMS[name] += dur
	rt.mu.Unlock()
	if rt.bus.Active() {
		rt.bus.Publish(obs.KindSpanEnd, rt.TraceID, rt.Tenant, map[string]string{
			"span":     name,
			"start_ms": strconv.FormatFloat(startMS, 'g', -1, 64),
			"dur_ms":   strconv.FormatFloat(dur, 'g', -1, 64),
		})
	}
}

// finish freezes the trace: status, cache token, error text, root
// duration — and announces the terminal event on the bus.
func (rt *RequestTrace) finish(status, cacheToken string, err error) {
	if rt == nil {
		return
	}
	end := rt.now()
	rt.mu.Lock()
	rt.Status = status
	rt.Cache = cacheToken
	if err != nil {
		rt.Error = err.Error()
	}
	rt.Root.DurMS = durMS(end.Sub(rt.start))
	rt.mu.Unlock()
	if rt.bus.Active() {
		rt.bus.Publish(obs.KindTraceEnd, rt.TraceID, rt.Tenant, map[string]string{
			"status": status,
			"cache":  cacheToken,
			"dur_ms": strconv.FormatFloat(rt.Root.DurMS, 'g', -1, 64),
		})
	}
}

// TraceStore retains the most recent finished traces for GET
// /trace/{id}: a bounded FIFO over a map.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*RequestTrace
	order []string
}

// DefaultTraceCapacity bounds the store when the config leaves it 0.
const DefaultTraceCapacity = 256

// NewTraceStore builds a store holding the last capacity traces
// (<= 0 selects DefaultTraceCapacity).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{cap: capacity, byID: make(map[string]*RequestTrace)}
}

// Put stores a finished trace, evicting the oldest past capacity.
func (ts *TraceStore) Put(rt *RequestTrace) {
	if ts == nil || rt == nil {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, dup := ts.byID[rt.TraceID]; !dup {
		ts.order = append(ts.order, rt.TraceID)
	}
	ts.byID[rt.TraceID] = rt
	for len(ts.order) > ts.cap {
		delete(ts.byID, ts.order[0])
		ts.order = ts.order[1:]
	}
}

// Get returns a finished trace by ID.
func (ts *TraceStore) Get(id string) (*RequestTrace, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rt, ok := ts.byID[id]
	return rt, ok
}

// timedShadow decorates a process's ShadowChecker with clock reads so
// the shadow_check stage reports how much of a request's latency the
// sanitizer's write checks cost. Armed only in detail mode: two clock
// reads per checked write is too hot for the default path.
type timedShadow struct {
	inner mem.ShadowChecker
	now   func() time.Time

	mu     sync.Mutex
	total  time.Duration
	checks uint64
}

func (ts *timedShadow) CheckWrite(addr mem.Addr, n uint64) *mem.Fault {
	t0 := ts.now()
	f := ts.inner.CheckWrite(addr, n)
	t1 := ts.now()
	ts.mu.Lock()
	ts.total += t1.Sub(t0)
	ts.checks++
	ts.mu.Unlock()
	return f
}

func (ts *timedShadow) Snapshot() any { return ts.inner.Snapshot() }
func (ts *timedShadow) Restore(v any) { ts.inner.Restore(v) }
func (ts *timedShadow) totals() (time.Duration, uint64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total, ts.checks
}

// heatFlushEvery is the coalescing window: heat-tile deltas are
// published to the bus once per this many observed writes (and once
// more at flush), so a hot loop costs map increments, not events.
const heatFlushEvery = 256

// heatStream converts a process's write stream into coalesced
// heat-tile delta events: per-byte counts accumulated over
// obs.HeatRowBytes-aligned tiles.
type heatStream struct {
	bus    *obs.Bus
	trace  string
	tenant string

	mu      sync.Mutex
	tiles   map[mem.Addr]*[obs.HeatRowBytes]uint64
	pending int
}

func newHeatStream(bus *obs.Bus, trace, tenant string) *heatStream {
	return &heatStream{bus: bus, trace: trace, tenant: tenant,
		tiles: make(map[mem.Addr]*[obs.HeatRowBytes]uint64)}
}

func (hs *heatStream) record(kind mem.AccessKind, addr mem.Addr, n uint64) {
	if kind != mem.AccessWrite || n == 0 {
		return
	}
	hs.mu.Lock()
	for i := uint64(0); i < n; i++ {
		a := addr.Add(int64(i))
		base := mem.Addr(uint64(a) / obs.HeatRowBytes * obs.HeatRowBytes)
		tile, ok := hs.tiles[base]
		if !ok {
			tile = new([obs.HeatRowBytes]uint64)
			hs.tiles[base] = tile
		}
		tile[uint64(a)-uint64(base)]++
	}
	hs.pending++
	if hs.pending >= heatFlushEvery {
		hs.flushLocked()
	}
	hs.mu.Unlock()
}

// flushLocked publishes one KindHeat event per dirty tile, tiles in
// address order so the stream is deterministic, then resets.
func (hs *heatStream) flushLocked() {
	if len(hs.tiles) == 0 {
		hs.pending = 0
		return
	}
	bases := make([]mem.Addr, 0, len(hs.tiles))
	for b := range hs.tiles {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, base := range bases {
		tile := hs.tiles[base]
		var sb strings.Builder
		for i, c := range tile {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.FormatUint(c, 10))
		}
		hs.bus.Publish(obs.KindHeat, hs.trace, hs.tenant, map[string]string{
			"base":   fmt.Sprintf("%#x", uint64(base)),
			"counts": sb.String(),
		})
	}
	hs.tiles = make(map[mem.Addr]*[obs.HeatRowBytes]uint64)
	hs.pending = 0
}

func (hs *heatStream) flush() {
	hs.mu.Lock()
	hs.flushLocked()
	hs.mu.Unlock()
}

// publishSegments announces the observed process's segment geometry so
// stream consumers can rebuild an annotated heatmap.
func (hs *heatStream) publishSegments(segs []*mem.Segment) {
	var sb strings.Builder
	for i, s := range segs {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%s:%#x:%#x", s.Kind.String(), uint64(s.Base), uint64(s.End()))
	}
	hs.bus.Publish(obs.KindHeatSegments, hs.trace, hs.tenant,
		map[string]string{"segments": sb.String()})
}

// publishMachineEvent streams one machine event (hijack, abort,
// dispatch, shadow violation) as it is recorded.
func publishMachineEvent(bus *obs.Bus, trace, tenant string, ev machine.Event) {
	bus.Publish(obs.KindEvent, trace, tenant, map[string]string{
		"event":  ev.Kind.String(),
		"detail": ev.Detail,
		"addr":   fmt.Sprintf("%#x", uint64(ev.Addr)),
	})
}
