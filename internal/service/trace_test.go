package service

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func traceTestService(t *testing.T, bus *obs.Bus) *Service {
	t.Helper()
	s := New(Config{
		Workers:  1,
		Registry: obs.NewRegistry(),
		Bus:      bus,
		Now:      NewVirtualClock().Now,
	})
	t.Cleanup(s.Drain)
	return s
}

func TestHandleTracedStages(t *testing.T) {
	s := traceTestService(t, nil)
	res, token, rt, err := s.HandleTraced(context.Background(),
		Request{Scenario: "bss-overflow", TraceID: "t-client-1"})
	if err != nil {
		t.Fatal(err)
	}
	if token != CacheMiss {
		t.Fatalf("token = %q, want miss", token)
	}
	if rt.TraceID != "t-client-1" {
		t.Fatalf("trace ID = %q, want the client-supplied one", rt.TraceID)
	}
	if !rt.Detail() {
		t.Fatal("client-supplied trace ID should arm detail mode")
	}
	for _, stage := range []string{StageQueueWait, StageClone, StageExecute} {
		if _, ok := rt.StageMS[stage]; !ok {
			t.Errorf("stage %q missing from breakdown %v", stage, rt.StageMS)
		}
	}
	if rt.Status != res.Status {
		t.Errorf("trace status %q != result status %q", rt.Status, res.Status)
	}
	if rt.Root == nil || len(rt.Root.Children) < 3 {
		t.Fatalf("span tree too small: %+v", rt.Root)
	}

	got, ok := s.Trace("t-client-1")
	if !ok || got != rt {
		t.Fatal("finished trace not retrievable by ID")
	}
}

func TestHandleTracedShadowStage(t *testing.T) {
	s := traceTestService(t, nil)
	_, _, rt, err := s.HandleTraced(context.Background(),
		Request{Scenario: "bss-overflow", Defense: "shadow", TraceID: "t-shadow"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.StageMS[StageShadowCheck]; !ok {
		t.Fatalf("shadow defense in detail mode should record a shadow_check stage, got %v", rt.StageMS)
	}
}

func TestHandleTracedMintsIDs(t *testing.T) {
	s := traceTestService(t, nil)
	_, _, rt1, err := s.HandleTraced(context.Background(), Request{Experiment: "E1"})
	if err != nil {
		t.Fatal(err)
	}
	_, _, rt2, err := s.HandleTraced(context.Background(), Request{Experiment: "E1"})
	if err != nil {
		t.Fatal(err)
	}
	if rt1.TraceID != "t-1" || rt2.TraceID != "t-2" {
		t.Fatalf("minted IDs %q, %q; want counter-derived t-1, t-2", rt1.TraceID, rt2.TraceID)
	}
	if rt1.Detail() {
		t.Fatal("minted trace with no subscriber must not arm detail mode")
	}
	if rt2.Cache != CacheHit {
		t.Fatalf("second identical request recorded cache %q, want hit", rt2.Cache)
	}
	if _, ok := rt2.StageMS[StageCacheLookup]; !ok {
		t.Fatalf("cache hit should record a cache_lookup stage, got %v", rt2.StageMS)
	}
}

// collectUntilTraceEnd drains bus events until the trace-end marker.
func collectUntilTraceEnd(t *testing.T, sub *obs.BusSubscriber) []obs.BusEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var evs []obs.BusEvent
	for {
		ev, ok := sub.Next(ctx)
		if !ok {
			t.Fatalf("stream ended after %d events without trace-end", len(evs))
		}
		evs = append(evs, ev)
		if ev.Kind == obs.KindTraceEnd {
			return evs
		}
	}
}

func TestTraceStreamEvents(t *testing.T) {
	bus := obs.NewBus(0)
	s := traceTestService(t, bus)
	sub := bus.Subscribe(0)
	defer sub.Close()

	if _, _, _, err := s.HandleTraced(context.Background(),
		Request{Scenario: "stack-ret", TraceID: "t-watch"}); err != nil {
		t.Fatal(err)
	}
	evs := collectUntilTraceEnd(t, sub)

	counts := map[string]int{}
	for _, ev := range evs {
		counts[ev.Kind]++
		if ev.Trace != "t-watch" && ev.Trace != "" {
			t.Errorf("event scoped to unexpected trace %q: %+v", ev.Trace, ev)
		}
	}
	for _, want := range []string{obs.KindSpanStart, obs.KindSpanEnd, obs.KindHeat,
		obs.KindHeatSegments, obs.KindAdmission, obs.KindTraceEnd} {
		if counts[want] == 0 {
			t.Errorf("stream carried no %q events (saw %v)", want, counts)
		}
	}
}

// TestTraceStreamDeterministic is the live-stream reproducibility
// contract: two servers on virtual clocks, fed the same sequential
// request sequence, publish byte-identical NDJSON.
func TestTraceStreamDeterministic(t *testing.T) {
	render := func() []byte {
		bus := obs.NewBus(0)
		s := New(Config{
			Workers:  1,
			Registry: obs.NewRegistry(),
			Bus:      bus,
			Now:      NewVirtualClock().Now,
		})
		defer s.Drain()
		sub := bus.Subscribe(0)
		defer sub.Close()

		reqs := []Request{
			{Scenario: "bss-overflow", TraceID: "t-a"},
			{Scenario: "stack-ret", Defense: "nx", TraceID: "t-b"},
			{Experiment: "E1", TraceID: "t-c"},
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, req := range reqs {
			if _, _, _, err := s.HandleTraced(context.Background(), req); err != nil {
				t.Fatal(err)
			}
			for _, ev := range collectUntilTraceEnd(t, sub) {
				if err := enc.Encode(ev); err != nil {
					t.Fatal(err)
				}
			}
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("virtual-clock streams differ across identical runs:\nlen a=%d b=%d", len(a), len(b))
	}
}

func TestTraceStoreEviction(t *testing.T) {
	ts := NewTraceStore(2)
	for _, id := range []string{"t-1", "t-2", "t-3"} {
		ts.Put(&RequestTrace{TraceID: id})
	}
	if _, ok := ts.Get("t-1"); ok {
		t.Fatal("oldest trace should have been evicted at capacity 2")
	}
	for _, id := range []string{"t-2", "t-3"} {
		if _, ok := ts.Get(id); !ok {
			t.Fatalf("trace %s missing", id)
		}
	}
}

// TestTraceConcurrentWithWatch drives concurrent traced requests while
// a subscriber churns — the service-level half of the /run + /watch
// race stress (run under -race in CI).
func TestTraceConcurrentWithWatch(t *testing.T) {
	bus := obs.NewBus(256)
	s := New(Config{
		Workers:  4,
		Registry: obs.NewRegistry(),
		Bus:      bus,
	})
	defer s.Drain()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	watchCtx, stopWatch := context.WithCancel(ctx)
	var watchers, requesters sync.WaitGroup
	watchers.Add(1)
	go func() {
		defer watchers.Done()
		for r := 0; r < 4; r++ {
			sub := bus.Subscribe(0)
			for i := 0; i < 100; i++ {
				if _, ok := sub.Next(watchCtx); !ok {
					break
				}
			}
			sub.Close()
			if watchCtx.Err() != nil {
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		requesters.Add(1)
		go func(w int) {
			defer requesters.Done()
			ids := []string{"bss-overflow", "stack-ret", "heap-overflow"}
			for i := 0; i < 6; i++ {
				req := Request{Scenario: ids[i%len(ids)], NoCache: i%2 == 0}
				if _, _, _, err := s.HandleTraced(ctx, req); err != nil {
					if _, shed := err.(*Rejection); !shed {
						t.Errorf("worker %d: %v", w, err)
					}
				}
			}
		}(w)
	}
	requesters.Wait()
	stopWatch()
	watchers.Wait()
}
