package shadow

import (
	"testing"

	"repro/internal/mem"
)

// TestCheckpointCarriesShadowState pins the COW-interaction contract
// with the real sanitizer attached to a real address space: both
// checkpoint flavours capture the shadow plane, and Restore/RestoreDirty
// reinstate it in lockstep with the data pages — a rollback never
// leaves quarantine or red-zone state disagreeing with the bytes it
// describes.
func TestCheckpointCarriesShadowState(t *testing.T) {
	for _, mode := range []string{"deep", "cow"} {
		t.Run(mode, func(t *testing.T) {
			m := new(mem.Memory)
			if _, err := m.Map(mem.SegData, 0x1000, 4096, mem.PermRW); err != nil {
				t.Fatal(err)
			}
			s := New()
			m.SetShadow(s)
			s.Poison(KindRedzone, 0x1100, 16, "rz")
			s.Quarantine(0x1200, 8, "stale")
			if err := m.Write(0x1000, []byte{1, 2, 3, 4}); err != nil {
				t.Fatalf("pre-checkpoint benign write: %v", err)
			}
			baseline := s.StateString()

			var cp *mem.Checkpoint
			if mode == "deep" {
				cp = m.Checkpoint()
			} else {
				cp = m.CowCheckpoint()
			}

			// Diverge both planes: bytes change, poison is lifted where it
			// was armed and armed where it was clear.
			s.Unpoison(0x1100, 16)
			s.Poison(KindVPtr, 0x1300, 8, "vptr")
			if err := m.Write(0x1100, []byte{0xAA, 0xBB}); err != nil {
				t.Fatalf("write after unpoison: %v", err)
			}
			if err := m.Write(0x1300, []byte{0xCC}); err == nil {
				t.Fatal("write into fresh poison passed")
			}
			if s.StateString() == baseline {
				t.Fatal("mutations did not change the shadow plane; test is vacuous")
			}

			restored, err := m.RestoreDirty(cp)
			if err != nil {
				t.Fatal(err)
			}
			if restored == 0 {
				t.Error("restore touched no pages despite dirtied data")
			}
			if got := s.StateString(); got != baseline {
				t.Errorf("shadow plane out of lockstep after restore:\n got: %s\nwant: %s", got, baseline)
			}
			// The restored plane is live, not just a rendering: the old red
			// zone rejects writes again, the rolled-back poison is gone.
			f := s.CheckWrite(0x1100, 1)
			if f == nil || f.Shadow != "redzone" {
				t.Errorf("restored red zone fault = %v, want redzone", f)
			}
			if err := m.Write(0x1300, []byte{0xCC}); err != nil {
				t.Errorf("write to rolled-back poison still faults: %v", err)
			}
			// Data pages rolled back with it.
			snap, err := m.Snapshot(0x1100, 2)
			if err != nil {
				t.Fatal(err)
			}
			if snap.Data[0] == 0xAA {
				t.Error("data bytes survived the restore")
			}
		})
	}
}

// TestRestoreWithoutShadowIsInert: a checkpoint that captured a shadow
// snapshot restores cleanly into a memory whose checker was detached —
// the data pages roll back and nothing panics.
func TestRestoreWithoutShadowIsInert(t *testing.T) {
	m := new(mem.Memory)
	if _, err := m.Map(mem.SegData, 0x1000, 4096, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	s := New()
	m.SetShadow(s)
	s.Poison(KindRedzone, 0x1100, 8, "rz")
	cp := m.CowCheckpoint()
	m.SetShadow(nil)
	if err := m.Write(0x1100, []byte{0xAA}); err != nil {
		t.Fatalf("write with checker detached: %v", err)
	}
	if _, err := m.RestoreDirty(cp); err != nil {
		t.Fatal(err)
	}
	if b, err := m.Snapshot(0x1100, 1); err != nil || b.Data[0] == 0xAA {
		t.Errorf("data restore failed: %v %v", b, err)
	}
}
