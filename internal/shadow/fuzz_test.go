package shadow

import (
	"testing"

	"repro/internal/mem"
)

// refShadow is the naive per-byte reference model of the shadow
// encoding: one map entry per poisoned byte. It applies the exact
// rounding rules documented in the package comment, independently of
// the compressed (prefix, kind) representation, so any divergence is an
// implementation bug in one of the two.
type refShadow struct {
	poison map[uint64]Kind
}

func newRef() *refShadow { return &refShadow{poison: make(map[uint64]Kind)} }

// prefixOf counts the leading addressable bytes of a granule.
func (r *refShadow) prefixOf(idx uint64) uint64 {
	start := idx * Granule
	for i := uint64(0); i < Granule; i++ {
		if _, ok := r.poison[start+i]; ok {
			return i
		}
	}
	return Granule
}

// kindOf returns the (uniform, by invariant) kind of a granule's
// poisoned bytes.
func (r *refShadow) kindOf(idx uint64) (Kind, bool) {
	start := idx * Granule
	for i := uint64(0); i < Granule; i++ {
		if k, ok := r.poison[start+i]; ok {
			return k, true
		}
	}
	return KindAddressable, false
}

func (r *refShadow) Poison(kind Kind, a, n uint64) {
	if n == 0 || kind == KindAddressable {
		return
	}
	hiIdx := (a + n - 1) / Granule
	for idx := a / Granule; idx <= hiIdx; idx++ {
		start := idx * Granule
		k := uint64(0)
		if a > start {
			k = a - start
		}
		if p := r.prefixOf(idx); p < k {
			k = p
		}
		for i := k; i < Granule; i++ {
			r.poison[start+i] = kind
		}
	}
}

func (r *refShadow) Unpoison(a, n uint64) {
	if n == 0 {
		return
	}
	hi := a + n
	hiIdx := (hi - 1) / Granule
	for idx := a / Granule; idx <= hiIdx; idx++ {
		start := idx * Granule
		if hi >= start+Granule {
			// Left edge rounds down: the whole granule clears.
			for i := uint64(0); i < Granule; i++ {
				delete(r.poison, start+i)
			}
			continue
		}
		// Right-partial granule: the addressable prefix grows.
		for b := start; b < hi; b++ {
			delete(r.poison, b)
		}
	}
}

func (r *refShadow) PrepareReuse(a, n uint64) {
	if n == 0 {
		return
	}
	hi := a + n
	hiIdx := (hi - 1) / Granule
	for idx := a / Granule; idx <= hiIdx; idx++ {
		k, ok := r.kindOf(idx)
		if !ok || (k != KindQuarantine && k != KindVPtr) {
			continue
		}
		start := idx * Granule
		if hi >= start+Granule {
			for i := uint64(0); i < Granule; i++ {
				delete(r.poison, start+i)
			}
			continue
		}
		for b := start; b < hi; b++ {
			delete(r.poison, b)
		}
	}
}

// firstPoisoned returns the lowest poisoned byte in [a, a+n), if any.
func (r *refShadow) firstPoisoned(a, n uint64) (uint64, bool) {
	for b := a; b < a+n; b++ {
		if _, ok := r.poison[b]; ok {
			return b, true
		}
	}
	return 0, false
}

// fuzzSpace bounds the fuzzed address range so the reference map stays
// small and every granule is exercised repeatedly.
const fuzzSpace = 1 << 12

// FuzzShadowState drives random poison/unpoison/quarantine/reuse
// programs (including 8-byte-granule straddling ranges) through both
// the compressed sanitizer and the naive per-byte reference, then
// checks byte-for-byte agreement of poison state and CheckWrite
// verdicts — first offending byte included.
func FuzzShadowState(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x10, 0x10})
	f.Add([]byte{0x01, 0x03, 0x05, 0x05, 0x10, 0x00, 0x08, 0x08})
	f.Add([]byte{0x22, 0x07, 0x01, 0x09, 0x15, 0x04, 0x20, 0x30, 0x33, 0x00, 0x40, 0x01})
	f.Add([]byte{0x51, 0xff, 0xff, 0x3f, 0x10, 0xfe, 0x02, 0x04, 0x42, 0x00, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, program []byte) {
		s := New()
		ref := newRef()
		for i := 0; i+4 <= len(program); i += 4 {
			op := program[i]
			a := (uint64(program[i+1])<<8 | uint64(program[i+2])) % fuzzSpace
			n := uint64(program[i+3]) % 96 // straddles up to 12 granules
			switch op % 8 {
			case 0:
				s.Unpoison(mem.Addr(a), n)
				ref.Unpoison(a, n)
			case 1:
				s.Quarantine(mem.Addr(a), n, "q")
				ref.Poison(KindQuarantine, a, n)
			case 2:
				s.PrepareReuse(mem.Addr(a), n)
				ref.PrepareReuse(a, n)
			default:
				kind := Kind(op%8 - 2) // KindRedzone..KindStackCtl
				s.Poison(kind, mem.Addr(a), n, "p")
				ref.Poison(kind, a, n)
			}
		}

		// Per-byte poison state must agree everywhere.
		for b := uint64(0); b < fuzzSpace+Granule; b++ {
			k, poisoned := s.PoisonedAt(mem.Addr(b))
			rk, rpoisoned := ref.poison[b]
			if poisoned != rpoisoned {
				t.Fatalf("byte %#x: sanitizer poisoned=%v, reference poisoned=%v", b, poisoned, rpoisoned)
			}
			if poisoned && k != rk {
				t.Fatalf("byte %#x: sanitizer kind=%v, reference kind=%v", b, k, rk)
			}
		}

		// CheckWrite verdicts must agree for a sweep of straddling writes,
		// including the reported first offending byte.
		for a := uint64(0); a < fuzzSpace; a += 3 {
			n := 1 + a%17
			fault := s.CheckWrite(mem.Addr(a), n)
			want, hit := ref.firstPoisoned(a, n)
			if (fault != nil) != hit {
				t.Fatalf("CheckWrite(%#x,%d): fault=%v, reference hit=%v", a, n, fault, hit)
			}
			if fault != nil && uint64(fault.Addr) != want {
				t.Fatalf("CheckWrite(%#x,%d): fault at %#x, reference first poisoned byte %#x",
					a, n, uint64(fault.Addr), want)
			}
		}
	})
}
