// Package shadow implements a byte-granular shadow-memory sanitizer
// for the simulated address space — the ASan-style detection tier the
// paper's §5 remedies stop short of. One shadow byte describes each
// 8-byte granule of application memory: the granule is either fully
// addressable, or it carries a poison kind (red zone, quarantine,
// vtable slot, heap metadata, stack control word) together with the
// length of its still-addressable prefix.
//
// The sanitizer plugs into mem.Memory through the ShadowChecker seam:
// every permission-checked write is validated against the shadow
// encoding *before* any byte lands, so an overflow is reported at the
// first poisoned byte it would have corrupted — in contrast to the
// arena-granular guard regions of the memguard defense, which only
// protect the gaps between arenas. Placement wiring (see
// internal/machine and internal/defense) poisons trailing red zones
// around every placement-new arena, vtable-pointer slots inside
// constructed objects, stack control words (return address, saved
// frame pointer, canary), heap block headers, and quarantines freed or
// released memory so the paper's dangling-placement attacks
// (Listings 14–16) fault on their first stale write.
//
// Encoding. Shadow byte 0x00 means "all 8 bytes addressable". Any
// other value packs the poison kind in the high nibble and the number
// k (0–7) of addressable leading bytes in the low 3 bits: bytes
// [0, k) of the granule may be written, bytes [k, 8) are poisoned.
// Rounding follows ASan's conventions and is mirrored byte-for-byte
// by the naive reference model the fuzzer checks against:
//
//   - Poison(kind, a, n) poisons every granule overlapping [a, a+n)
//     through to its end (right edge rounds up). In the first granule
//     the addressable prefix becomes min(existing prefix, a−start),
//     so bytes already poisoned below a stay poisoned (repainted to
//     the new kind) and addressable bytes below a stay addressable.
//   - Unpoison(a, n) clears every granule whose end lies within
//     [a, a+n) entirely (left edge rounds down to the granule start);
//     a right-partial granule keeps its kind and its addressable
//     prefix grows to max(existing prefix, (a+n)−start).
//
// Because all mutations go through these two primitives, every
// granule is always representable as (prefix, kind) — the compressed
// form and the per-byte reference can never disagree on
// expressiveness, only on implementation, which is exactly what
// FuzzShadowState exercises.
package shadow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/layout"
	"repro/internal/mem"
)

// Granule is the number of application bytes described by one shadow
// byte.
const Granule = 8

// Kind classifies why a byte is poisoned.
type Kind uint8

// Poison kinds. KindAddressable is the zero value and never appears in
// a non-zero shadow byte.
const (
	KindAddressable Kind = iota
	KindRedzone          // trailing red zone after a placement arena
	KindQuarantine       // freed / released memory (dangling-placement detection)
	KindVPtr             // vtable-pointer slot inside a constructed object
	KindHeapMeta         // heap allocator block header
	KindStackCtl         // stack control word: return address, saved FP, canary
)

// String returns a short lower-case name.
func (k Kind) String() string {
	switch k {
	case KindAddressable:
		return "addressable"
	case KindRedzone:
		return "redzone"
	case KindQuarantine:
		return "quarantine"
	case KindVPtr:
		return "vptr-slot"
	case KindHeapMeta:
		return "heap-metadata"
	case KindStackCtl:
		return "stack-control"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stats are the sanitizer's monotonic counters, harvested into the
// pn_shadow_* metric families by the obs collector. Counters are never
// rolled back by snapshot restores.
type Stats struct {
	PoisonOps     uint64 // Poison calls (all kinds, quarantines included)
	UnpoisonOps   uint64 // Unpoison calls
	QuarantineOps uint64 // Poison calls with KindQuarantine
	CheckedWrites uint64 // writes validated against the shadow encoding
	Violations    uint64 // writes rejected (shadow faults raised)
}

// component is one laid-out piece of a recorded object, used to
// attribute violations to a class member.
type component struct {
	off  uint64
	size uint64
	name string // "field" or "__vptr"
}

// object is one recorded placement, kept sorted by base.
type object struct {
	base  mem.Addr
	size  uint64
	class string
	comps []component // sorted by offset
}

// Sanitizer is the byte-granular shadow plane for one simulated
// process. It implements mem.ShadowChecker. The zero value is not
// usable; call New.
//
// Like mem.Memory itself, a Sanitizer is not safe for concurrent use —
// a simulated process is single-threaded.
type Sanitizer struct {
	// cells maps granule index (addr>>3) to the non-zero shadow byte.
	// Absent entries are 0x00 (fully addressable), so the map stays
	// proportional to the poisoned footprint, not the address space.
	cells map[uint64]byte
	// labels carries the poisoning site's label per granule, for
	// diagnostics. Maintained in lockstep with cells.
	labels map[uint64]string
	// objects records constructed-object layouts for class/field
	// attribution, sorted by base address.
	objects []object

	suspended int
	stats     Stats
}

// New returns an empty sanitizer: everything addressable, nothing
// recorded.
func New() *Sanitizer {
	return &Sanitizer{
		cells:  make(map[uint64]byte),
		labels: make(map[uint64]string),
	}
}

// prefix returns the addressable-prefix length (0–8) encoded by a
// shadow byte.
func prefix(sb byte) uint64 {
	if sb == 0 {
		return Granule
	}
	return uint64(sb & 7)
}

// Poison marks [a, a+n) poisoned with the given kind, rounding per the
// package rules, and associates label with the affected granules for
// diagnostics.
func (s *Sanitizer) Poison(kind Kind, a mem.Addr, n uint64, label string) {
	if n == 0 || kind == KindAddressable {
		return
	}
	s.stats.PoisonOps++
	if kind == KindQuarantine {
		s.stats.QuarantineOps++
	}
	lo := uint64(a)
	hiIdx := (lo + n - 1) / Granule
	for idx := lo / Granule; idx <= hiIdx; idx++ {
		start := idx * Granule
		k := uint64(0)
		if lo > start {
			k = lo - start
		}
		if p := prefix(s.cells[idx]); p < k {
			k = p
		}
		s.cells[idx] = byte(kind)<<4 | byte(k)
		s.labels[idx] = label
	}
}

// Unpoison marks [a, a+n) addressable, rounding per the package rules.
func (s *Sanitizer) Unpoison(a mem.Addr, n uint64) {
	if n == 0 {
		return
	}
	s.stats.UnpoisonOps++
	lo := uint64(a)
	hi := lo + n
	hiIdx := (hi - 1) / Granule
	for idx := lo / Granule; idx <= hiIdx; idx++ {
		sb, ok := s.cells[idx]
		if !ok {
			continue
		}
		start := idx * Granule
		if hi >= start+Granule {
			delete(s.cells, idx)
			delete(s.labels, idx)
			continue
		}
		// Right-partial granule: grow the addressable prefix, keep
		// the kind.
		k := hi - start // 1..7
		if p := uint64(sb & 7); p > k {
			k = p
		}
		s.cells[idx] = sb&0xF0 | byte(k)
	}
}

// Quarantine poisons [a, a+n) as KindQuarantine — the
// use-after-placement-delete trap armed by defense.Release.
func (s *Sanitizer) Quarantine(a mem.Addr, n uint64, label string) {
	s.Poison(KindQuarantine, a, n, label)
}

// PrepareReuse clears stale *lifecycle* poison — quarantine and
// vtable-slot bytes left by a previous tenant — over [a, a+n) ahead of
// a legitimate re-placement, while leaving *structural* poison (red
// zones, heap metadata, stack control words) armed. Construction over a
// reused arena is the paper's intended pool lifecycle and must not
// fault on the previous object's remains; construction that overlaps an
// allocator header or a trailing red zone is exactly the overflow the
// sanitizer exists to catch, so those kinds survive. Rounding follows
// Unpoison (left edge rounds down; a right-partial granule keeps its
// kind with a grown addressable prefix).
func (s *Sanitizer) PrepareReuse(a mem.Addr, n uint64) {
	if n == 0 || len(s.cells) == 0 {
		return
	}
	lo := uint64(a)
	hi := lo + n
	hiIdx := (hi - 1) / Granule
	for idx := lo / Granule; idx <= hiIdx; idx++ {
		sb, ok := s.cells[idx]
		if !ok {
			continue
		}
		switch Kind(sb >> 4) {
		case KindQuarantine, KindVPtr:
		default:
			continue
		}
		start := idx * Granule
		if hi >= start+Granule {
			delete(s.cells, idx)
			delete(s.labels, idx)
			continue
		}
		k := hi - start
		if p := uint64(sb & 7); p > k {
			k = p
		}
		s.cells[idx] = sb&0xF0 | byte(k)
	}
}

// Suspend disables CheckWrite until the matching Resume. Nested calls
// stack. The harness uses it around legitimate writes to poisoned
// bytes — the heap allocator's own header updates, for example.
func (s *Sanitizer) Suspend() { s.suspended++ }

// Resume re-enables CheckWrite after a Suspend.
func (s *Sanitizer) Resume() {
	if s.suspended > 0 {
		s.suspended--
	}
}

// Exempt runs f with checking suspended, restoring it afterwards even
// if f panics.
func (s *Sanitizer) Exempt(f func() error) error {
	s.Suspend()
	defer s.Resume()
	return f()
}

// PoisonedAt reports whether the single byte at a is poisoned, and its
// kind. It never counts as a checked write.
func (s *Sanitizer) PoisonedAt(a mem.Addr) (Kind, bool) {
	sb := s.cells[uint64(a)/Granule]
	if sb == 0 {
		return KindAddressable, false
	}
	if uint64(a)%Granule < uint64(sb&7) {
		return KindAddressable, false
	}
	return Kind(sb >> 4), true
}

// CheckWrite validates a write of n bytes at a against the shadow
// encoding. It returns nil if every byte is addressable (or checking
// is suspended) and a *mem.Fault of kind mem.FaultShadow describing
// the first poisoned byte the write would have corrupted otherwise.
// It implements mem.ShadowChecker.
func (s *Sanitizer) CheckWrite(a mem.Addr, n uint64) *mem.Fault {
	if s.suspended > 0 || n == 0 {
		return nil
	}
	s.stats.CheckedWrites++
	if len(s.cells) == 0 {
		return nil
	}
	lo := uint64(a)
	hi := lo + n
	loIdx := lo / Granule
	hiIdx := (hi - 1) / Granule

	// For huge writes (a whole-segment memset, say) scanning the small
	// poison set beats walking every granule of the write.
	if hiIdx-loIdx+1 > uint64(len(s.cells)) {
		bad := uint64(0)
		found := false
		for idx, sb := range s.cells {
			if idx < loIdx || idx > hiIdx {
				continue
			}
			if off, ok := s.overlap(idx, sb, lo, hi); ok && (!found || off < bad) {
				bad, found = off, true
			}
		}
		if found {
			return s.violation(mem.Addr(bad), a, n)
		}
		return nil
	}

	for idx := loIdx; idx <= hiIdx; idx++ {
		sb, ok := s.cells[idx]
		if !ok {
			continue
		}
		if off, okk := s.overlap(idx, sb, lo, hi); okk {
			return s.violation(mem.Addr(off), a, n)
		}
	}
	return nil
}

// overlap reports the lowest poisoned byte of granule idx that the
// write [lo, hi) touches, if any.
//
// Vptr granules get a byte-accurate pass: the prefix encoding can only
// say "addressable up to k, poisoned after", but a vptr slot is a
// 4-byte island — an object whose first field starts right after the
// vptr shares its granule with it, and the coarse rule would fault a
// legitimate write to that field. The recorded object layouts (already
// kept for attribution) say exactly which bytes are vptr slots, so for
// KindVPtr we consult them per byte and only fall back to the prefix
// rule for bytes no recorded object explains.
func (s *Sanitizer) overlap(idx uint64, sb byte, lo, hi uint64) (uint64, bool) {
	start := idx * Granule
	pstart := start + uint64(sb&7) // first poisoned byte of the granule
	wlo := lo
	if start > wlo {
		wlo = start
	}
	whi := hi
	if end := start + Granule; end < whi {
		whi = end
	}
	if Kind(sb>>4) == KindVPtr {
		for b := wlo; b < whi; b++ {
			explained, poisoned := s.vptrByte(b)
			if poisoned || (!explained && b >= pstart) {
				return b, true
			}
		}
		return 0, false
	}
	if wlo < pstart {
		wlo = pstart
	}
	if wlo < whi {
		return wlo, true
	}
	return 0, false
}

// vptrByte reports whether a recorded object covers byte b (explained)
// and, if so, whether b lies inside one of its vptr slots (poisoned).
func (s *Sanitizer) vptrByte(b uint64) (explained, poisoned bool) {
	addr := mem.Addr(b)
	i := sort.Search(len(s.objects), func(i int) bool { return s.objects[i].base > addr })
	if i == 0 {
		return false, false
	}
	o := s.objects[i-1]
	off := uint64(addr.Diff(o.base))
	if off >= o.size {
		return false, false
	}
	for _, c := range o.comps {
		if c.name == "__vptr" && off >= c.off && off < c.off+c.size {
			return true, true
		}
	}
	return true, false
}

// violation builds the shadow fault for the first poisoned byte bad of
// an n-byte write starting at a, attributing it to the poisoned region
// and, when a recorded object explains the geometry, to the offending
// class and field.
func (s *Sanitizer) violation(bad, a mem.Addr, n uint64) *mem.Fault {
	s.stats.Violations++
	idx := uint64(bad) / Granule
	kind := Kind(s.cells[idx] >> 4)
	label := s.labels[idx]
	if attr := s.Attribute(bad); attr != "" {
		if label != "" {
			label += "; " + attr
		} else {
			label = attr
		}
	}
	_ = a // the write start; the fault reports the poisoned byte
	return &mem.Fault{
		Kind:   mem.FaultShadow,
		Addr:   bad,
		Size:   n,
		Shadow: kind.String(),
		Guard:  label,
	}
}

// RecordObject registers a constructed object's layout so later
// violations can be attributed to the class and field surrounding the
// offending byte. Re-recording the same base replaces the previous
// entry (placement reuse).
func (s *Sanitizer) RecordObject(base mem.Addr, l *layout.ClassLayout) {
	if l == nil {
		return
	}
	o := object{base: base, size: l.Size, class: l.Class.Name()}
	for _, vo := range l.VPtrOffsets {
		o.comps = append(o.comps, component{off: vo, size: l.Model.PtrSize, name: "__vptr"})
	}
	if fields, err := l.AllFields(); err == nil {
		for _, f := range fields {
			o.comps = append(o.comps, component{off: f.Offset, size: f.Type.Size(l.Model), name: f.Name})
		}
	}
	sort.Slice(o.comps, func(i, j int) bool { return o.comps[i].off < o.comps[j].off })
	i := sort.Search(len(s.objects), func(i int) bool { return s.objects[i].base >= base })
	if i < len(s.objects) && s.objects[i].base == base {
		s.objects[i] = o
		return
	}
	s.objects = append(s.objects, object{})
	copy(s.objects[i+1:], s.objects[i:])
	s.objects[i] = o
}

// attributeWindow bounds how far past an object's end a violation is
// still blamed on that object's overflow.
const attributeWindow = 64

// Attribute explains addr in terms of the nearest recorded object at
// or below it: "class.field+k" inside an object, "N bytes past the end
// of class" just after one, "" when no object explains the address.
func (s *Sanitizer) Attribute(addr mem.Addr) string {
	i := sort.Search(len(s.objects), func(i int) bool { return s.objects[i].base > addr })
	if i == 0 {
		return ""
	}
	o := s.objects[i-1]
	off := uint64(addr.Diff(o.base))
	if off < o.size {
		for j := len(o.comps) - 1; j >= 0; j-- {
			c := o.comps[j]
			if off >= c.off && off < c.off+c.size {
				if off == c.off {
					return fmt.Sprintf("%s.%s", o.class, c.name)
				}
				return fmt.Sprintf("%s.%s+%d", o.class, c.name, off-c.off)
			}
		}
		return fmt.Sprintf("%s+%d", o.class, off)
	}
	if past := off - o.size; past < attributeWindow {
		return fmt.Sprintf("%d bytes past the end of %s", past, o.class)
	}
	return ""
}

// Stats returns the monotonic counters.
func (s *Sanitizer) Stats() Stats { return s.stats }

// PoisonedGranules returns the number of granules currently carrying
// any poison — the live shadow footprint.
func (s *Sanitizer) PoisonedGranules() int { return len(s.cells) }

// Region is one maximal run of equally-poisoned granules, for the
// heatmap overlay.
type Region struct {
	Base  mem.Addr // first poisoned byte
	Size  uint64   // through the end of the last granule of the run
	Kind  Kind
	Label string
}

// Regions returns the poisoned address space as maximal runs of
// granules sharing a kind and label, in ascending address order. The
// output is deterministic for a given shadow state.
func (s *Sanitizer) Regions() []Region {
	if len(s.cells) == 0 {
		return nil
	}
	idxs := make([]uint64, 0, len(s.cells))
	for idx := range s.cells {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var out []Region
	for _, idx := range idxs {
		sb := s.cells[idx]
		base := mem.Addr(idx*Granule + uint64(sb&7))
		end := mem.Addr((idx + 1) * Granule)
		kind := Kind(sb >> 4)
		label := s.labels[idx]
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Kind == kind && last.Label == label &&
				last.Base.Add(int64(last.Size)) == mem.Addr(idx*Granule) {
				last.Size = uint64(end.Diff(last.Base))
				continue
			}
		}
		out = append(out, Region{Base: base, Size: uint64(end.Diff(base)), Kind: kind, Label: label})
	}
	return out
}

// StateString renders the shadow state deterministically — one line
// per region — for golden tests and differential comparison.
func (s *Sanitizer) StateString() string {
	regions := s.Regions()
	if len(regions) == 0 {
		return "(all addressable)\n"
	}
	var sb strings.Builder
	for _, r := range regions {
		fmt.Fprintf(&sb, "[%#x,%#x) %s %q\n", uint64(r.Base), uint64(r.Base)+r.Size, r.Kind, r.Label)
	}
	return sb.String()
}

// snapshot is the opaque state captured by Snapshot.
type snapshot struct {
	cells   map[uint64]byte
	labels  map[uint64]string
	objects []object
}

// Snapshot captures the shadow planes (and the object registry) for a
// checkpoint. Counters are not captured: they are monotonic. It
// implements mem.ShadowChecker.
func (s *Sanitizer) Snapshot() any {
	snap := &snapshot{
		cells:   make(map[uint64]byte, len(s.cells)),
		labels:  make(map[uint64]string, len(s.labels)),
		objects: make([]object, len(s.objects)),
	}
	for k, v := range s.cells {
		snap.cells[k] = v
	}
	for k, v := range s.labels {
		snap.labels[k] = v
	}
	copy(snap.objects, s.objects)
	return snap
}

// Restore reinstates a state captured by Snapshot on this sanitizer.
// Foreign values are ignored. It implements mem.ShadowChecker.
func (s *Sanitizer) Restore(v any) {
	snap, ok := v.(*snapshot)
	if !ok {
		return
	}
	s.cells = make(map[uint64]byte, len(snap.cells))
	s.labels = make(map[uint64]string, len(snap.labels))
	for k, v := range snap.cells {
		s.cells[k] = v
	}
	for k, v := range snap.labels {
		s.labels[k] = v
	}
	s.objects = make([]object, len(snap.objects))
	copy(s.objects, snap.objects)
}
