package shadow

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/mem"
)

func TestPoisonUnpoisonRoundTrip(t *testing.T) {
	s := New()
	s.Poison(KindRedzone, 0x100, 16, "rz")
	if f := s.CheckWrite(0x100, 1); f == nil {
		t.Fatal("write into red zone passed")
	}
	if f := s.CheckWrite(0xF8, 8); f != nil {
		t.Fatalf("write below red zone faulted: %v", f)
	}
	s.Unpoison(0x100, 16)
	if f := s.CheckWrite(0x100, 16); f != nil {
		t.Fatalf("write after unpoison faulted: %v", f)
	}
	if got := s.PoisonedGranules(); got != 0 {
		t.Errorf("poisoned granules after full unpoison = %d", got)
	}
}

func TestPartialGranulePrefix(t *testing.T) {
	s := New()
	// Poison from mid-granule: bytes [0x103, 0x108) of granule 0x20.
	s.Poison(KindQuarantine, 0x103, 5, "q")
	if f := s.CheckWrite(0x100, 3); f != nil {
		t.Fatalf("write to addressable prefix faulted: %v", f)
	}
	f := s.CheckWrite(0x100, 4)
	if f == nil {
		t.Fatal("write straddling into poison passed")
	}
	if f.Addr != 0x103 {
		t.Errorf("fault at %#x, want first poisoned byte 0x103", uint64(f.Addr))
	}
	if f.Kind != mem.FaultShadow || f.Shadow != "quarantine" {
		t.Errorf("fault = %+v, want shadow/quarantine", f)
	}
	// Right-partial unpoison grows the prefix but keeps the kind.
	s.Unpoison(0x100, 5) // up to 0x105
	if f := s.CheckWrite(0x103, 2); f != nil {
		t.Fatalf("write to grown prefix faulted: %v", f)
	}
	if k, poisoned := s.PoisonedAt(0x105); !poisoned || k != KindQuarantine {
		t.Errorf("byte 0x105 = (%v, %v), want still quarantined", k, poisoned)
	}
}

func TestPoisonRepaintsKind(t *testing.T) {
	s := New()
	s.Poison(KindQuarantine, 0x200, 8, "old tenant")
	s.Poison(KindRedzone, 0x200, 8, "new zone")
	k, poisoned := s.PoisonedAt(0x200)
	if !poisoned || k != KindRedzone {
		t.Errorf("repainted byte = (%v, %v), want redzone", k, poisoned)
	}
	if f := s.CheckWrite(0x200, 1); f == nil || f.Shadow != "redzone" || !strings.Contains(f.Guard, "new zone") {
		t.Errorf("fault = %v, want redzone with new label", f)
	}
}

func TestPrepareReuseKeepsStructuralPoison(t *testing.T) {
	s := New()
	s.Poison(KindQuarantine, 0x300, 8, "released placement")
	s.Poison(KindVPtr, 0x308, 8, "vptr")
	s.Poison(KindRedzone, 0x310, 8, "red zone")
	s.Poison(KindHeapMeta, 0x318, 8, "header")
	s.Poison(KindStackCtl, 0x320, 8, "ret")
	s.PrepareReuse(0x300, 0x30)
	for _, tc := range []struct {
		at   mem.Addr
		want bool
	}{{0x300, false}, {0x308, false}, {0x310, true}, {0x318, true}, {0x320, true}} {
		if _, poisoned := s.PoisonedAt(tc.at); poisoned != tc.want {
			t.Errorf("PoisonedAt(%#x) = %v, want %v", uint64(tc.at), poisoned, tc.want)
		}
	}
}

func TestSuspendResumeExempt(t *testing.T) {
	s := New()
	s.Poison(KindHeapMeta, 0x400, 8, "hdr")
	s.Suspend()
	if f := s.CheckWrite(0x400, 8); f != nil {
		t.Fatalf("suspended check faulted: %v", f)
	}
	s.Resume()
	if f := s.CheckWrite(0x400, 8); f == nil {
		t.Fatal("resumed check passed")
	}
	err := s.Exempt(func() error {
		if f := s.CheckWrite(0x400, 8); f != nil {
			t.Errorf("exempted check faulted: %v", f)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := s.CheckWrite(0x400, 8); f == nil {
		t.Fatal("check stayed suspended after Exempt")
	}
}

func TestHugeWriteScansPoisonSet(t *testing.T) {
	s := New()
	s.Poison(KindRedzone, 0x9000, 8, "far")
	s.Poison(KindRedzone, 0x5000, 8, "near")
	// The write spans far more granules than there are poisoned cells, so
	// CheckWrite iterates the map; the reported byte must still be the
	// lowest one (deterministic despite map order).
	f := s.CheckWrite(0x1000, 0x10000)
	if f == nil {
		t.Fatal("huge write over poison passed")
	}
	if f.Addr != 0x5000 {
		t.Errorf("fault at %#x, want lowest poisoned byte 0x5000", uint64(f.Addr))
	}
}

func TestAttribution(t *testing.T) {
	model := layout.ILP32
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	l, err := layout.Of(grad, model)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	base := mem.Addr(0x1000)
	s.RecordObject(base, l)
	for _, tc := range []struct {
		at   mem.Addr
		want string
	}{
		{base, "GradStudent.gpa"},
		{base.Add(8), "GradStudent.year"},
		{base.Add(17), "GradStudent.ssn+1"},
		{base.Add(int64(l.Size)), "0 bytes past the end of GradStudent"},
		{base.Add(int64(l.Size) + 10), "10 bytes past the end of GradStudent"},
		{base.Add(int64(l.Size) + attributeWindow), ""},
	} {
		if got := s.Attribute(tc.at); got != tc.want {
			t.Errorf("Attribute(%#x) = %q, want %q", uint64(tc.at), got, tc.want)
		}
	}
	// The fault message carries both the poison label and the attribution.
	s.Poison(KindRedzone, base.Add(int64(l.Size)), 16, "red zone after arena")
	f := s.CheckWrite(base.Add(int64(l.Size)), 4)
	if f == nil {
		t.Fatal("no fault")
	}
	if !strings.Contains(f.Guard, "red zone after arena") || !strings.Contains(f.Guard, "past the end of GradStudent") {
		t.Errorf("fault guard = %q, want label and attribution", f.Guard)
	}
}

func TestStatsAndSnapshotRestore(t *testing.T) {
	s := New()
	s.Poison(KindRedzone, 0x100, 8, "a")
	s.Quarantine(0x200, 8, "b")
	s.CheckWrite(0x100, 1) // violation
	s.CheckWrite(0x300, 1) // clean
	st := s.Stats()
	if st.PoisonOps != 2 || st.QuarantineOps != 1 || st.CheckedWrites != 2 || st.Violations != 1 {
		t.Errorf("stats = %+v", st)
	}

	snap := s.Snapshot()
	s.Unpoison(0x100, 8)
	s.Poison(KindVPtr, 0x400, 8, "c")
	s.Restore(snap)
	if f := s.CheckWrite(0x100, 1); f == nil {
		t.Error("restored state lost the red zone")
	}
	if f := s.CheckWrite(0x400, 8); f != nil {
		t.Errorf("restored state kept post-snapshot poison: %v", f)
	}
	// Counters are monotonic: the restore must not roll them back.
	if got := s.Stats(); got.PoisonOps < st.PoisonOps {
		t.Errorf("restore rolled back counters: %+v", got)
	}
	// Foreign snapshot values are ignored.
	s.Restore(42)
	if f := s.CheckWrite(0x100, 1); f == nil {
		t.Error("foreign restore clobbered state")
	}
}

func TestRegionsAndStateString(t *testing.T) {
	s := New()
	if got := s.StateString(); got != "(all addressable)\n" {
		t.Errorf("empty state = %q", got)
	}
	s.Poison(KindRedzone, 0x100, 16, "rz")
	s.Poison(KindQuarantine, 0x120, 8, "q")
	regs := s.Regions()
	if len(regs) != 2 {
		t.Fatalf("regions = %+v", regs)
	}
	if regs[0].Base != 0x100 || regs[0].Size != 16 || regs[0].Kind != KindRedzone {
		t.Errorf("region 0 = %+v", regs[0])
	}
	if regs[1].Base != 0x120 || regs[1].Kind != KindQuarantine {
		t.Errorf("region 1 = %+v", regs[1])
	}
	ss := s.StateString()
	if !strings.Contains(ss, "redzone") || !strings.Contains(ss, "quarantine") {
		t.Errorf("state string = %q", ss)
	}
	// Deterministic across calls.
	if ss != s.StateString() {
		t.Error("StateString not deterministic")
	}
}

func TestCheckWriteZeroAndEmpty(t *testing.T) {
	s := New()
	if f := s.CheckWrite(0x100, 0); f != nil {
		t.Errorf("zero-length write faulted: %v", f)
	}
	if f := s.CheckWrite(0, ^uint64(0)>>1); f != nil {
		t.Errorf("clean huge write faulted: %v", f)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindAddressable: "addressable",
		KindRedzone:     "redzone",
		KindQuarantine:  "quarantine",
		KindVPtr:        "vptr-slot",
		KindHeapMeta:    "heap-metadata",
		KindStackCtl:    "stack-control",
		Kind(9):         "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// A vptr slot shares its 8-byte granule with the object's first fields
// (ILP32: 4-byte vptr at offset 0, fields from offset 4). The prefix
// encoding alone cannot express "poisoned head, addressable tail", so
// vptr granules are refined byte-accurately against the recorded
// layout: field writes next to the slot pass, writes into the slot —
// or to vptr bytes no recorded object explains — still fault.
func TestVPtrGranuleFieldWritePasses(t *testing.T) {
	model := layout.ILP32i386
	c := layout.NewClass("Poly").
		AddVirtual("m0").
		AddField("f0", layout.Int).
		AddField("f1", layout.Int)
	l, err := layout.Of(c, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.VPtrOffsets) != 1 || l.VPtrOffsets[0] != 0 {
		t.Fatalf("VPtrOffsets = %v, want [0]", l.VPtrOffsets)
	}
	s := New()
	base := mem.Addr(0x2000)
	s.RecordObject(base, l)
	s.Poison(KindVPtr, base, model.PtrSize, "Poly vtable pointer")

	// f0 at offset 4 lives in the vptr's granule; the write must pass.
	if f := s.CheckWrite(base.Add(4), 4); f != nil {
		t.Fatalf("field write beside vptr faulted: %v", f)
	}
	// Writes touching the slot itself still fault, first byte blamed.
	for _, tc := range []struct{ off, n int64 }{{0, 1}, {3, 1}, {0, 8}, {2, 4}} {
		f := s.CheckWrite(base.Add(tc.off), uint64(tc.n))
		if f == nil {
			t.Fatalf("write [%d,%d) over vptr slot passed", tc.off, tc.off+tc.n)
		}
		if !strings.Contains(f.Guard, "vtable pointer") {
			t.Errorf("fault guard = %q, want vtable pointer label", f.Guard)
		}
	}

	// Without a recorded object the conservative whole-granule rule
	// stands: the tail bytes of an unexplained vptr granule fault.
	s2 := New()
	s2.Poison(KindVPtr, base, model.PtrSize, "orphan vptr")
	if f := s2.CheckWrite(base.Add(4), 4); f == nil {
		t.Fatal("unexplained vptr granule tail write passed")
	}
}
