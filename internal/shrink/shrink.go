// Package shrink reduces failing inputs to (locally) minimal repros.
//
// The algorithm is the greedy delta-pass lifted from the deep-vs-COW
// differential harness in internal/mem: repeatedly try removing one
// element at a time, keeping any removal that preserves the failure,
// until a full pass removes nothing. The result is 1-minimal — no
// single element can be dropped without losing the failure — which in
// practice collapses hundred-op random scenarios to a handful of
// load-bearing steps.
//
// Both the mem differential harness and the foundry triage pipeline
// build on this package, so a fix or improvement to shrinking lands in
// every consumer at once.
package shrink

// Predicate reports whether the candidate input still fails (i.e. still
// reproduces the divergence being minimised). It must be safe to call
// repeatedly; Greedy calls it O(n²) times in the worst case.
type Predicate[T any] func(candidate []T) bool

// Greedy returns a locally minimal subsequence of items for which
// failing still returns true. The input slice is not modified; the
// returned slice preserves the relative order of the surviving
// elements. If failing(items) is false for the original input the
// original is returned unchanged — there is nothing to preserve.
func Greedy[T any](items []T, failing Predicate[T]) []T {
	if !failing(items) {
		return items
	}
	ops := append([]T(nil), items...)
	changed := true
	for changed {
		changed = false
		for i := 0; i < len(ops); i++ {
			cand := append(append([]T(nil), ops[:i]...), ops[i+1:]...)
			if failing(cand) {
				ops = cand
				changed = true
				i--
			}
		}
	}
	return ops
}

// Removed reports how many elements Greedy eliminated given the input
// and output lengths — a convenience for effectiveness metrics.
func Removed(before, after int) int {
	if after > before {
		return 0
	}
	return before - after
}
