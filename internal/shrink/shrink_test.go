package shrink

import (
	"reflect"
	"testing"
)

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestGreedy(t *testing.T) {
	tests := []struct {
		name    string
		in      []int
		failing Predicate[int]
		want    []int
	}{
		{
			name:    "single needle survives",
			in:      []int{1, 2, 3, 4, 5},
			failing: func(c []int) bool { return contains(c, 3) },
			want:    []int{3},
		},
		{
			name:    "pair of needles survives in order",
			in:      []int{9, 3, 1, 7, 2},
			failing: func(c []int) bool { return contains(c, 3) && contains(c, 7) },
			want:    []int{3, 7},
		},
		{
			name:    "always failing shrinks to empty",
			in:      []int{4, 5, 6},
			failing: func(c []int) bool { return true },
			want:    []int{},
		},
		{
			name:    "never failing returns input unchanged",
			in:      []int{4, 5, 6},
			failing: func(c []int) bool { return false },
			want:    []int{4, 5, 6},
		},
		{
			name: "length threshold keeps minimal count",
			in:   []int{1, 2, 3, 4, 5, 6},
			// Fails while at least three elements remain: 1-minimal
			// result is any 3 elements; greedy removal from the front
			// leaves the last three.
			failing: func(c []int) bool { return len(c) >= 3 },
			want:    []int{4, 5, 6},
		},
		{
			name:    "empty input with failing predicate",
			in:      nil,
			failing: func(c []int) bool { return true },
			want:    nil,
		},
		{
			name: "duplicate needles: one copy survives",
			in:   []int{7, 1, 7, 2, 7},
			failing: func(c []int) bool {
				n := 0
				for _, x := range c {
					if x == 7 {
						n++
					}
				}
				return n >= 1
			},
			want: []int{7},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			in := append([]int(nil), tc.in...)
			got := Greedy(in, tc.failing)
			if len(got) == 0 && len(tc.want) == 0 {
				// fine: nil vs empty both acceptable
			} else if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Greedy(%v) = %v, want %v", tc.in, got, tc.want)
			}
			if !reflect.DeepEqual(in, tc.in) && tc.in != nil {
				t.Fatalf("Greedy mutated its input: %v -> %v", tc.in, in)
			}
			// 1-minimality: no single surviving element can be dropped.
			if len(got) > 0 && tc.failing(got) {
				for i := range got {
					cand := append(append([]int(nil), got[:i]...), got[i+1:]...)
					if tc.failing(cand) {
						t.Fatalf("result %v not 1-minimal: dropping index %d still fails", got, i)
					}
				}
			}
		})
	}
}

func TestGreedyPreservesOrder(t *testing.T) {
	in := []int{5, 4, 3, 2, 1}
	got := Greedy(in, func(c []int) bool { return contains(c, 4) && contains(c, 2) })
	want := []int{4, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Greedy = %v, want %v (relative order must be preserved)", got, want)
	}
}

func TestRemoved(t *testing.T) {
	tests := []struct {
		before, after, want int
	}{
		{10, 3, 7},
		{3, 3, 0},
		{0, 0, 0},
		{2, 5, 0}, // grew (cannot happen from Greedy): clamp to zero
	}
	for _, tc := range tests {
		if got := Removed(tc.before, tc.after); got != tc.want {
			t.Fatalf("Removed(%d, %d) = %d, want %d", tc.before, tc.after, got, tc.want)
		}
	}
}
