package stackm

import (
	"testing"
	"testing/quick"

	"repro/internal/layout"
	"repro/internal/mem"
)

// Property: for random push/pop sequences with random local shapes, the
// stack maintains its invariants — frames nest (SP strictly decreases on
// push and is restored on pop), locals lie inside the segment and below
// their frame's bookkeeping words, untouched canaries always verify, and
// unmodified return addresses round-trip.
func TestQuickPushPopInvariants(t *testing.T) {
	types := []layout.Type{
		layout.Char, layout.Int, layout.Double, layout.PtrTo(nil),
		layout.ArrayOf(layout.Char, 7), layout.ArrayOf(layout.Int, 3),
	}
	f := func(ops []uint8, canary, saveFP bool) bool {
		m := &mem.Memory{}
		if _, err := m.Map(mem.SegStack, 0x8000, 0x2000, mem.PermRW); err != nil {
			return false
		}
		s, err := New(m, 0x8000, 0x2000, Options{
			Model: layout.ILP32i386, Canary: canary, SaveFP: saveFP,
		})
		if err != nil {
			return false
		}
		type pushed struct {
			sp  mem.Addr
			ret mem.Addr
		}
		var stack []pushed
		for i, op := range ops {
			if op%3 == 0 && len(stack) > 0 {
				res, err := s.Pop()
				if err != nil {
					return false
				}
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if res.Ret != top.ret || res.RetModified || !res.CanaryOK || res.FPModified {
					return false
				}
				if s.SP() != top.sp {
					return false
				}
				continue
			}
			prevSP := s.SP()
			var locals []LocalSpec
			for j := 0; j < int(op%4); j++ {
				locals = append(locals, LocalSpec{
					Name: "l" + string(rune('a'+j)),
					Type: types[(int(op)+j)%len(types)],
				})
			}
			ret := mem.Addr(0x100 + uint64(i))
			fr, err := s.Push("f", ret, locals)
			if err != nil {
				// Stack exhaustion is legitimate; stop mutating.
				break
			}
			if s.SP() >= prevSP {
				return false
			}
			for _, spec := range locals {
				l, err := fr.Local(spec.Name)
				if err != nil {
					return false
				}
				if l.Addr < 0x8000 || l.End(layout.ILP32i386) > fr.Top {
					return false
				}
				// Locals never overlap the bookkeeping words.
				if l.End(layout.ILP32i386) > minSlot(fr) {
					return false
				}
			}
			stack = append(stack, pushed{sp: prevSP, ret: ret})
		}
		// Unwind everything.
		for len(stack) > 0 {
			res, err := s.Pop()
			if err != nil || res.RetModified || !res.CanaryOK {
				return false
			}
			stack = stack[:len(stack)-1]
		}
		return s.Depth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// minSlot returns the lowest bookkeeping slot address of a frame.
func minSlot(f *Frame) mem.Addr {
	min := f.RetSlot
	if f.FPSlot != 0 && f.FPSlot < min {
		min = f.FPSlot
	}
	if f.CanarySlot != 0 && f.CanarySlot < min {
		min = f.CanarySlot
	}
	return min
}

// Property: corrupting any single byte of the canary always fails
// verification; corrupting bytes outside it never does.
func TestQuickCanaryByteSensitivity(t *testing.T) {
	f := func(off uint8, val byte) bool {
		m := &mem.Memory{}
		if _, err := m.Map(mem.SegStack, 0x8000, 0x1000, mem.PermRW); err != nil {
			return false
		}
		s, err := New(m, 0x8000, 0x1000, Options{Model: layout.ILP32i386, Canary: true})
		if err != nil {
			return false
		}
		fr, err := s.Push("f", 0x1234, []LocalSpec{{Name: "x", Type: layout.ArrayOf(layout.Char, 16)}})
		if err != nil {
			return false
		}
		inCanary := off%20 < 4
		var target mem.Addr
		if inCanary {
			target = fr.CanarySlot.Add(int64(off % 4))
		} else {
			l, err := fr.Local("x")
			if err != nil {
				return false
			}
			target = l.Addr.Add(int64(off % 16))
		}
		old, err := m.ReadU8(target)
		if err != nil {
			return false
		}
		if err := m.WriteU8(target, val); err != nil {
			return false
		}
		changed := old != val
		res, err := s.Pop()
		if err != nil {
			return false
		}
		if inCanary && changed {
			return !res.CanaryOK
		}
		return res.CanaryOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
