// Package stackm simulates the call stack of the victim process: frames
// grow downward, each holding (top to bottom) the return address, an
// optionally saved frame pointer, an optional StackGuard canary, and the
// function's locals in declaration order — first-declared highest.
//
// This geometry is exactly the one the paper's §3.6.1 experiment indexes
// into: overflowing a local object walks upward through later words, so
// with neither FP nor canary ssn[0] lands on the return address, with a
// saved FP ssn[1] does, and with a canary ssn[2] does. The canary value
// defaults to StackGuard's terminator canary. Canary verification happens
// on Pop, mirroring gcc's function-epilogue __stack_chk_fail check.
package stackm

import (
	"fmt"

	"repro/internal/layout"
	"repro/internal/mem"
)

// TerminatorCanary is StackGuard's classic terminator canary (NUL, CR, LF,
// 0xFF), used when Options.CanaryValue is zero.
const TerminatorCanary uint64 = 0x000aff0d

// Options configures frame construction.
type Options struct {
	// Model determines pointer width and local alignment. The paper's
	// testbed corresponds to layout.ILP32i386.
	Model layout.Model
	// SaveFP reserves a saved-frame-pointer slot under the return address.
	SaveFP bool
	// Canary places a StackGuard canary between the locals and the saved
	// FP / return address, verified on Pop.
	Canary bool
	// CanaryValue overrides the canary; zero selects TerminatorCanary.
	CanaryValue uint64
}

func (o Options) canary() uint64 {
	if o.CanaryValue != 0 {
		return o.CanaryValue
	}
	return TerminatorCanary
}

// LocalSpec declares one local variable of a frame.
type LocalSpec struct {
	Name string
	Type layout.Type
}

// Local is a placed local variable.
type Local struct {
	Name string
	Type layout.Type
	Addr mem.Addr
}

// End returns the first address past the local.
func (l Local) End(m layout.Model) mem.Addr { return l.Addr.Add(int64(l.Type.Size(m))) }

// Frame is one activation record.
type Frame struct {
	Func string
	// Top is the high-water address of the frame (exclusive): the byte
	// just above the stored return address.
	Top mem.Addr
	// SP is the low end of the frame; the next frame is pushed below it.
	SP mem.Addr
	// RetSlot is the address holding the return address.
	RetSlot mem.Addr
	// FPSlot is the saved-frame-pointer slot, 0 when absent.
	FPSlot mem.Addr
	// CanarySlot is the canary word, 0 when absent.
	CanarySlot mem.Addr

	retOriginal uint64
	fpOriginal  uint64
	locals      []Local
}

// Local returns the placed local with the given name.
func (f *Frame) Local(name string) (Local, error) {
	for _, l := range f.locals {
		if l.Name == name {
			return l, nil
		}
	}
	return Local{}, fmt.Errorf("stackm: frame %s has no local %q", f.Func, name)
}

// Locals returns the placed locals in declaration order.
func (f *Frame) Locals() []Local {
	out := make([]Local, len(f.locals))
	copy(out, f.locals)
	return out
}

// Stack simulates the process call stack over a mapped segment.
type Stack struct {
	m      *mem.Memory
	base   mem.Addr // lowest valid address
	top    mem.Addr // first address past the stack
	sp     mem.Addr
	fpReg  uint64 // simulated frame-pointer register
	opts   Options
	frames []*Frame
}

// New creates a stack over [base, base+size), with the stack pointer at
// the top.
func New(m *mem.Memory, base mem.Addr, size uint64, opts Options) (*Stack, error) {
	if m == nil {
		return nil, fmt.Errorf("stackm: nil memory")
	}
	if opts.Model.PtrSize == 0 {
		return nil, fmt.Errorf("stackm: options missing data model")
	}
	if err := m.CheckRange(base, size, mem.PermRW); err != nil {
		return nil, fmt.Errorf("stackm: stack range not mapped read-write: %w", err)
	}
	top := base.Add(int64(size))
	return &Stack{m: m, base: base, top: top, sp: top, opts: opts}, nil
}

// NewOnImage creates a stack over the image's stack segment.
func NewOnImage(img *mem.Image, opts Options) (*Stack, error) {
	return New(img.Mem, img.Stack.Base, img.Stack.Size(), opts)
}

// Options returns the stack's frame options.
func (s *Stack) Options() Options { return s.opts }

// SP returns the current stack pointer.
func (s *Stack) SP() mem.Addr { return s.sp }

// Reserve moves the stack pointer down by n bytes without creating a
// frame — the argv/environment area a real process image keeps above its
// outermost frame, which is what an overflow of that frame's locals runs
// into instead of the end of the mapping.
func (s *Stack) Reserve(n uint64) error {
	np := s.sp.Add(-int64(n))
	if np < s.base || np > s.sp {
		return fmt.Errorf("stackm: reserve of %d bytes exceeds stack", n)
	}
	s.sp = np
	return nil
}

// Depth returns the number of live frames.
func (s *Stack) Depth() int { return len(s.frames) }

// Current returns the innermost frame, or nil when the stack is empty.
func (s *Stack) Current() *Frame {
	if len(s.frames) == 0 {
		return nil
	}
	return s.frames[len(s.frames)-1]
}

func alignDown(v uint64, a uint64) uint64 {
	if a <= 1 {
		return v
	}
	return v - v%a
}

// Push creates a frame for fn returning to retAddr, placing locals in
// declaration order from high to low addresses.
func (s *Stack) Push(fn string, retAddr mem.Addr, locals []LocalSpec) (*Frame, error) {
	ptr := s.opts.Model.PtrSize
	f := &Frame{Func: fn, Top: s.sp}
	cur := s.sp

	cur = cur.Add(-int64(ptr))
	f.RetSlot = cur
	f.retOriginal = uint64(retAddr)
	if err := s.checkRoom(cur); err != nil {
		return nil, err
	}
	if err := s.m.WriteUint(f.RetSlot, uint64(retAddr), int(ptr)); err != nil {
		return nil, err
	}

	if s.opts.SaveFP {
		cur = cur.Add(-int64(ptr))
		f.FPSlot = cur
		f.fpOriginal = s.fpReg
		if err := s.m.WriteUint(f.FPSlot, s.fpReg, int(ptr)); err != nil {
			return nil, err
		}
		s.fpReg = uint64(f.FPSlot)
	}

	if s.opts.Canary {
		cur = cur.Add(-int64(ptr))
		f.CanarySlot = cur
		if err := s.m.WriteUint(f.CanarySlot, s.opts.canary(), int(ptr)); err != nil {
			return nil, err
		}
	}

	for _, spec := range locals {
		if spec.Type == nil {
			return nil, fmt.Errorf("stackm: local %s.%s has nil type", fn, spec.Name)
		}
		for _, prev := range f.locals {
			if prev.Name == spec.Name {
				return nil, fmt.Errorf("stackm: duplicate local %s.%s", fn, spec.Name)
			}
		}
		size := spec.Type.Size(s.opts.Model)
		align := spec.Type.Align(s.opts.Model)
		cur = mem.Addr(alignDown(uint64(cur)-size, align))
		if err := s.checkRoom(cur); err != nil {
			return nil, err
		}
		f.locals = append(f.locals, Local{Name: spec.Name, Type: spec.Type, Addr: cur})
	}

	f.SP = cur
	s.sp = cur
	s.frames = append(s.frames, f)
	return f, nil
}

func (s *Stack) checkRoom(cur mem.Addr) error {
	if cur < s.base {
		return fmt.Errorf("stackm: stack overflow: frame would extend below %#x", uint64(s.base))
	}
	return nil
}

// PopResult reports what the function epilogue observed.
type PopResult struct {
	Func string
	// Ret is the return address read back from the stack — possibly
	// attacker-controlled.
	Ret mem.Addr
	// RetModified reports whether Ret differs from the address stored at
	// call time: a hijacked return.
	RetModified bool
	// CanaryOK is false when the frame had a canary and it was trampled;
	// a StackGuard process aborts in that case. True when no canary.
	CanaryOK bool
	// CanaryFound is the value read back (meaningful when !CanaryOK).
	CanaryFound uint64
	// FPModified reports whether the saved frame pointer was altered
	// (klog's frame-pointer overwrite).
	FPModified bool
}

// Pop runs the epilogue of the innermost frame: verify the canary (if
// any), restore the saved FP, read the return address, and release the
// frame. Memory faults surface as errors; canary failure and return
// hijacks are reported in the result, since the simulated program — not
// this package — decides how to react (abort vs. jump).
func (s *Stack) Pop() (PopResult, error) {
	if len(s.frames) == 0 {
		return PopResult{}, fmt.Errorf("stackm: pop on empty stack")
	}
	f := s.frames[len(s.frames)-1]
	ptr := int(s.opts.Model.PtrSize)
	res := PopResult{Func: f.Func, CanaryOK: true}

	if f.CanarySlot != 0 {
		v, err := s.m.ReadUint(f.CanarySlot, ptr)
		if err != nil {
			return res, err
		}
		res.CanaryFound = v
		res.CanaryOK = v == s.opts.canary()
	}
	if f.FPSlot != 0 {
		v, err := s.m.ReadUint(f.FPSlot, ptr)
		if err != nil {
			return res, err
		}
		res.FPModified = v != f.fpOriginal
		s.fpReg = v
	}
	ret, err := s.m.ReadUint(f.RetSlot, ptr)
	if err != nil {
		return res, err
	}
	res.Ret = mem.Addr(ret)
	res.RetModified = ret != f.retOriginal

	s.frames = s.frames[:len(s.frames)-1]
	s.sp = f.Top
	return res, nil
}

// Backtrace renders the live frames innermost-first, one line each, with
// the stored return address as currently present on the stack (which may
// already be attacker-controlled).
func (s *Stack) Backtrace() []string {
	out := make([]string, 0, len(s.frames))
	ptr := int(s.opts.Model.PtrSize)
	for i := len(s.frames) - 1; i >= 0; i-- {
		f := s.frames[i]
		ret, err := s.m.ReadUint(f.RetSlot, ptr)
		line := fmt.Sprintf("#%d %s sp=%#x", len(s.frames)-1-i, f.Func, uint64(f.SP))
		if err == nil {
			line += fmt.Sprintf(" ret=%#x", ret)
			if ret != f.retOriginal {
				line += " [CLOBBERED]"
			}
		}
		out = append(out, line)
	}
	return out
}

// LocalAt finds the live local variable whose storage contains addr,
// searching innermost frames first. This is the stack half of the
// RuntimeGuard arena inference (§5.2).
func (s *Stack) LocalAt(addr mem.Addr) (Local, *Frame, bool) {
	for i := len(s.frames) - 1; i >= 0; i-- {
		f := s.frames[i]
		for _, l := range f.locals {
			if addr >= l.Addr && addr < l.End(s.opts.Model) {
				return l, f, true
			}
		}
	}
	return Local{}, nil, false
}
