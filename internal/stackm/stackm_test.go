package stackm

import (
	"strings"
	"testing"

	"repro/internal/layout"
	"repro/internal/mem"
)

func paperStudentGrad() (*layout.Class, *layout.Class) {
	student := layout.NewClass("Student").
		AddField("gpa", layout.Double).
		AddField("year", layout.Int).
		AddField("semester", layout.Int)
	grad := layout.NewClass("GradStudent", student).
		AddField("ssn", layout.ArrayOf(layout.Int, 3))
	return student, grad
}

func newTestStack(t *testing.T, opts Options) (*Stack, *mem.Memory) {
	t.Helper()
	m := &mem.Memory{}
	if _, err := m.Map(mem.SegStack, 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if opts.Model.PtrSize == 0 {
		opts.Model = layout.ILP32i386
	}
	s, err := New(m, 0x8000, 0x1000, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestPushPopBalanced(t *testing.T) {
	s, _ := newTestStack(t, Options{})
	top := s.SP()
	f, err := s.Push("f", 0x1234, []LocalSpec{{Name: "x", Type: layout.Int}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 1 || s.Current() != f {
		t.Fatal("frame not current")
	}
	res, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0x1234 || res.RetModified || !res.CanaryOK {
		t.Errorf("pop = %+v", res)
	}
	if s.SP() != top || s.Depth() != 0 {
		t.Error("stack not restored")
	}
	if _, err := s.Pop(); err == nil {
		t.Error("pop on empty stack succeeded")
	}
}

func TestLocalsDeclarationOrderHighToLow(t *testing.T) {
	// Listing 15: "A call to addStudent(true) pushes n and then stud":
	// earlier-declared locals sit at higher addresses.
	student, _ := paperStudentGrad()
	s, _ := newTestStack(t, Options{})
	f, err := s.Push("addStudent", 0x1000, []LocalSpec{
		{Name: "n", Type: layout.Int},
		{Name: "stud", Type: student},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Local("n")
	if err != nil {
		t.Fatal(err)
	}
	stud, err := f.Local("stud")
	if err != nil {
		t.Fatal(err)
	}
	if stud.Addr >= n.Addr {
		t.Errorf("stud %#x not below n %#x", uint64(stud.Addr), uint64(n.Addr))
	}
	// Under i386 alignment they are adjacent: stud end == n start.
	if stud.End(layout.ILP32i386) != n.Addr {
		t.Errorf("stud end %#x != n %#x", uint64(stud.End(layout.ILP32i386)), uint64(n.Addr))
	}
	if _, err := f.Local("nope"); err == nil {
		t.Error("missing local lookup succeeded")
	}
}

// TestPaperReturnAddressIndexing reproduces the §3.6.1 arithmetic: the
// ssn[] word index that lands on the return address is 0 with neither FP
// nor canary, 1 with a saved FP, and 2 with both (canary under FP).
func TestPaperReturnAddressIndexing(t *testing.T) {
	student, grad := paperStudentGrad()
	_ = grad
	tests := []struct {
		name     string
		opts     Options
		wantIdx  int64
		hasSlots int // 1=ret, 2=+fp, 3=+canary
	}{
		{"plain", Options{Model: layout.ILP32i386}, 0, 1},
		{"savedFP", Options{Model: layout.ILP32i386, SaveFP: true}, 1, 2},
		{"canary+FP", Options{Model: layout.ILP32i386, SaveFP: true, Canary: true}, 2, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, _ := newTestStack(t, tt.opts)
			f, err := s.Push("addStudent", 0x2000, []LocalSpec{{Name: "stud", Type: student}})
			if err != nil {
				t.Fatal(err)
			}
			stud, err := f.Local("stud")
			if err != nil {
				t.Fatal(err)
			}
			// ssn[i] of a GradStudent placed at &stud lives at
			// stud + 16 + 4*i (sizeof(Student)==16 under i386 alignment).
			ssnBase := stud.Addr.Add(16)
			gotIdx := (f.RetSlot.Diff(ssnBase)) / 4
			if gotIdx != tt.wantIdx {
				t.Errorf("ret slot at ssn[%d], want ssn[%d]", gotIdx, tt.wantIdx)
			}
			if tt.hasSlots >= 3 {
				if f.CanarySlot != ssnBase {
					t.Errorf("canary at %#x, want ssn[0] %#x", uint64(f.CanarySlot), uint64(ssnBase))
				}
			} else if f.CanarySlot != 0 {
				t.Error("unexpected canary slot")
			}
			if tt.hasSlots >= 2 {
				wantFP := ssnBase.Add(4 * (tt.wantIdx - 1))
				if f.FPSlot != wantFP {
					t.Errorf("fp slot at %#x, want %#x", uint64(f.FPSlot), uint64(wantFP))
				}
			} else if f.FPSlot != 0 {
				t.Error("unexpected fp slot")
			}
		})
	}
}

func TestCanaryVerification(t *testing.T) {
	s, m := newTestStack(t, Options{Canary: true})
	f, err := s.Push("victim", 0x3000, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Untouched canary verifies.
	res, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CanaryOK {
		t.Fatal("pristine canary failed verification")
	}
	// Trampled canary is detected.
	f, err = s.Push("victim", 0x3000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteU32(f.CanarySlot, 0x41414141); err != nil {
		t.Fatal(err)
	}
	res, err = s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if res.CanaryOK {
		t.Error("smashed canary passed verification")
	}
	if res.CanaryFound != 0x41414141 {
		t.Errorf("CanaryFound = %#x", res.CanaryFound)
	}
}

func TestDefaultCanaryIsTerminator(t *testing.T) {
	s, m := newTestStack(t, Options{Canary: true})
	f, err := s.Push("f", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU32(f.CanarySlot)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(v) != TerminatorCanary {
		t.Errorf("canary = %#x, want terminator %#x", v, TerminatorCanary)
	}
}

func TestCustomCanaryValue(t *testing.T) {
	s, m := newTestStack(t, Options{Canary: true, CanaryValue: 0xdeadbeef})
	f, err := s.Push("f", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU32(f.CanarySlot)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Errorf("canary = %#x", v)
	}
}

// TestCanarySkipBypass is the §5.2 experiment at the stack level: writing
// the return-address word while leaving the canary word untouched passes
// StackGuard verification yet hijacks the return.
func TestCanarySkipBypass(t *testing.T) {
	student, _ := paperStudentGrad()
	s, m := newTestStack(t, Options{SaveFP: true, Canary: true})
	f, err := s.Push("addStudent", 0x2000, []LocalSpec{{Name: "stud", Type: student}})
	if err != nil {
		t.Fatal(err)
	}
	stud, err := f.Local("stud")
	if err != nil {
		t.Fatal(err)
	}
	ssnBase := stud.Addr.Add(16)
	// Skip ssn[0] (canary) and ssn[1] (saved FP); write only ssn[2].
	if err := m.WriteU32(ssnBase.Add(8), 0x41414141); err != nil {
		t.Fatal(err)
	}
	res, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.CanaryOK {
		t.Error("canary tripped despite selective write")
	}
	if !res.RetModified || res.Ret != 0x41414141 {
		t.Errorf("return not hijacked: %+v", res)
	}
}

func TestFramePointerOverwriteDetected(t *testing.T) {
	s, m := newTestStack(t, Options{SaveFP: true})
	f, err := s.Push("f", 0x2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteU32(f.FPSlot, 0x61616161); err != nil {
		t.Fatal(err)
	}
	res, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if !res.FPModified {
		t.Error("fp overwrite not reported")
	}
}

func TestNestedFramesRestoreFP(t *testing.T) {
	s, _ := newTestStack(t, Options{SaveFP: true})
	if _, err := s.Push("outer", 0x1, nil); err != nil {
		t.Fatal(err)
	}
	outerFP := s.fpReg
	if _, err := s.Push("inner", 0x2, nil); err != nil {
		t.Fatal(err)
	}
	if s.fpReg == outerFP {
		t.Fatal("fp register unchanged by push")
	}
	res, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if res.FPModified {
		t.Error("clean pop reported fp modified")
	}
	if s.fpReg != outerFP {
		t.Error("fp register not restored")
	}
}

func TestStackExhaustion(t *testing.T) {
	s, _ := newTestStack(t, Options{})
	big := layout.ArrayOf(layout.Char, 0x2000)
	if _, err := s.Push("f", 0, []LocalSpec{{Name: "buf", Type: big}}); err == nil {
		t.Error("oversized frame accepted")
	}
	// Many nested frames eventually exhaust the segment.
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = s.Push("f", 0, []LocalSpec{{Name: "x", Type: layout.ArrayOf(layout.Char, 64)}}); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("unbounded recursion never overflowed")
	}
}

func TestPushValidation(t *testing.T) {
	s, _ := newTestStack(t, Options{})
	if _, err := s.Push("f", 0, []LocalSpec{{Name: "x", Type: nil}}); err == nil {
		t.Error("nil local type accepted")
	}
	if _, err := s.Push("f", 0, []LocalSpec{
		{Name: "x", Type: layout.Int}, {Name: "x", Type: layout.Int},
	}); err == nil {
		t.Error("duplicate local accepted")
	}
}

func TestNewValidation(t *testing.T) {
	m := &mem.Memory{}
	if _, err := New(m, 0x8000, 0x1000, Options{Model: layout.ILP32}); err == nil {
		t.Error("unmapped stack accepted")
	}
	if _, err := m.Map(mem.SegStack, 0x8000, 0x1000, mem.PermRW); err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, 0x8000, 0x1000, Options{}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := New(nil, 0x8000, 0x1000, Options{Model: layout.ILP32}); err == nil {
		t.Error("nil memory accepted")
	}
}

func TestLocalAt(t *testing.T) {
	student, _ := paperStudentGrad()
	s, _ := newTestStack(t, Options{})
	if _, err := s.Push("outer", 0, []LocalSpec{{Name: "a", Type: layout.Int}}); err != nil {
		t.Fatal(err)
	}
	f2, err := s.Push("inner", 0, []LocalSpec{{Name: "stud", Type: student}})
	if err != nil {
		t.Fatal(err)
	}
	stud, err := f2.Local("stud")
	if err != nil {
		t.Fatal(err)
	}
	l, fr, ok := s.LocalAt(stud.Addr.Add(5))
	if !ok || l.Name != "stud" || fr != f2 {
		t.Errorf("LocalAt = %v %v %v", l, fr, ok)
	}
	if _, _, ok := s.LocalAt(stud.End(layout.ILP32i386)); ok {
		// One past the end must not match stud itself; it may match
		// another local in an outer frame, so only assert when a hit
		// claims to be stud.
		if l2, _, _ := s.LocalAt(stud.End(layout.ILP32i386)); l2.Name == "stud" {
			t.Error("LocalAt matched one past end of stud")
		}
	}
	if _, _, ok := s.LocalAt(0x100); ok {
		t.Error("LocalAt matched outside stack")
	}
}

func TestNewOnImage(t *testing.T) {
	img, err := mem.NewProcessImage(mem.ImageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewOnImage(img, Options{Model: layout.ILP32i386})
	if err != nil {
		t.Fatal(err)
	}
	if s.SP() != img.Stack.End() {
		t.Errorf("sp = %#x, want stack top %#x", uint64(s.SP()), uint64(img.Stack.End()))
	}
}

func TestLP64FrameGeometry(t *testing.T) {
	s, _ := newTestStack(t, Options{Model: layout.LP64, SaveFP: true, Canary: true})
	f, err := s.Push("f", 0xdead, []LocalSpec{{Name: "x", Type: layout.Long}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Top.Diff(f.RetSlot) != 8 || f.RetSlot.Diff(f.FPSlot) != 8 || f.FPSlot.Diff(f.CanarySlot) != 8 {
		t.Errorf("slots: top=%#x ret=%#x fp=%#x canary=%#x",
			uint64(f.Top), uint64(f.RetSlot), uint64(f.FPSlot), uint64(f.CanarySlot))
	}
	res, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 0xdead || !res.CanaryOK {
		t.Errorf("pop = %+v", res)
	}
}

func TestBacktrace(t *testing.T) {
	s, m := newTestStack(t, Options{})
	if _, err := s.Push("main", 0x1000, nil); err != nil {
		t.Fatal(err)
	}
	f2, err := s.Push("addStudent", 0x2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	bt := s.Backtrace()
	if len(bt) != 2 {
		t.Fatalf("backtrace = %v", bt)
	}
	if !strings.Contains(bt[0], "#0 addStudent") || !strings.Contains(bt[0], "ret=0x2000") {
		t.Errorf("frame 0 = %q", bt[0])
	}
	if !strings.Contains(bt[1], "#1 main") {
		t.Errorf("frame 1 = %q", bt[1])
	}
	// A clobbered return address is flagged.
	if err := m.WriteU32(f2.RetSlot, 0x41414141); err != nil {
		t.Fatal(err)
	}
	bt = s.Backtrace()
	if !strings.Contains(bt[0], "[CLOBBERED]") {
		t.Errorf("clobbered frame not flagged: %q", bt[0])
	}
}
