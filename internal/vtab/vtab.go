// Package vtab computes virtual-table layouts for the class model in
// internal/layout: which virtual methods occupy which slots of which
// table, and which class provides the implementation after overrides.
//
// The machine package materialises these specs into the simulated rodata
// segment and dispatches virtual calls by reading the vptr out of object
// memory — which is precisely what makes the §3.8.2 vtable-pointer
// subterfuge possible: an overflow that rewrites the vptr redirects every
// subsequent virtual call.
package vtab

import (
	"fmt"

	"repro/internal/layout"
)

// Slot is one entry of a virtual table: the method name and the class
// whose implementation the slot resolves to after override resolution.
type Slot struct {
	Name string
	Impl *layout.Class
}

// Key returns the canonical "Class::method" spelling used to register
// implementations with the machine.
func (s Slot) Key() string { return MethodKey(s.Impl, s.Name) }

// MethodKey builds the canonical "Class::method" implementation key.
func MethodKey(c *layout.Class, method string) string {
	return c.Name() + "::" + method
}

// Table is one virtual table of a class: the offset within the complete
// object of the vptr that points at it, and its slots in order.
type Table struct {
	// VPtrOffset is where, inside an instance, the pointer to this table
	// lives. Single inheritance yields one table with offset 0.
	VPtrOffset uint64
	Slots      []Slot
}

// TablesOf computes the virtual tables of c under model m, primary table
// first. Overridden methods resolve to the most-derived implementor in
// every table where the method name appears; virtuals new in c are
// appended to the primary table.
func TablesOf(c *layout.Class, m layout.Model) ([]Table, error) {
	l, err := layout.Of(c, m)
	if err != nil {
		return nil, fmt.Errorf("vtab: %w", err)
	}
	var tables []Table
	for _, bp := range l.Bases {
		bts, err := TablesOf(bp.Class, m)
		if err != nil {
			return nil, err
		}
		for _, bt := range bts {
			bt.VPtrOffset += bp.Offset
			// Deep-copy slots so override rewriting never mutates the
			// base class's cached tables.
			slots := make([]Slot, len(bt.Slots))
			copy(slots, bt.Slots)
			bt.Slots = slots
			tables = append(tables, bt)
		}
	}
	virtuals := c.Virtuals()
	if len(virtuals) > 0 {
		if len(tables) == 0 {
			tables = append(tables, Table{VPtrOffset: 0})
		}
		for _, v := range virtuals {
			found := false
			for ti := range tables {
				for si := range tables[ti].Slots {
					if tables[ti].Slots[si].Name == v {
						tables[ti].Slots[si].Impl = c
						found = true
					}
				}
			}
			if !found {
				tables[0].Slots = append(tables[0].Slots, Slot{Name: v, Impl: c})
			}
		}
	}
	// Sanity: the computed tables must match the layout's vptr inventory.
	if len(tables) != len(l.VPtrOffsets) {
		return nil, fmt.Errorf("vtab: class %s: %d tables for %d vptrs", c.Name(), len(tables), len(l.VPtrOffsets))
	}
	return tables, nil
}

// SlotOf locates method by name across tables, returning the table index
// and slot index of its primary occurrence (first table containing it).
func SlotOf(tables []Table, method string) (tableIdx, slotIdx int, err error) {
	for ti, t := range tables {
		for si, s := range t.Slots {
			if s.Name == method {
				return ti, si, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("vtab: no virtual method %q", method)
}
