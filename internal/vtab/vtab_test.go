package vtab

import (
	"testing"

	"repro/internal/layout"
)

func TestNonPolymorphicHasNoTables(t *testing.T) {
	c := layout.NewClass("Plain").AddField("x", layout.Int)
	ts, err := TablesOf(c, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Errorf("tables = %d, want 0", len(ts))
	}
}

func TestSingleClassTable(t *testing.T) {
	c := layout.NewClass("C").AddVirtual("f").AddVirtual("g")
	ts, err := TablesOf(c, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].VPtrOffset != 0 {
		t.Fatalf("tables = %+v", ts)
	}
	if len(ts[0].Slots) != 2 || ts[0].Slots[0].Name != "f" || ts[0].Slots[1].Name != "g" {
		t.Errorf("slots = %+v", ts[0].Slots)
	}
	for _, s := range ts[0].Slots {
		if s.Impl != c {
			t.Errorf("impl = %v, want C", s.Impl)
		}
	}
}

func TestOverrideResolvesToDerived(t *testing.T) {
	// The paper's §3.8.2 example: getInfo() virtual in both classes.
	student := layout.NewClass("Student").AddVirtual("getInfo").AddField("gpa", layout.Double)
	grad := layout.NewClass("GradStudent", student).AddVirtual("getInfo")

	sts, err := TablesOf(student, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].Slots[0].Impl != student {
		t.Errorf("Student table resolves to %v", sts[0].Slots[0].Impl)
	}
	gts, err := TablesOf(grad, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(gts) != 1 || len(gts[0].Slots) != 1 {
		t.Fatalf("grad tables = %+v", gts)
	}
	if gts[0].Slots[0].Impl != grad {
		t.Errorf("override not applied: impl = %v", gts[0].Slots[0].Impl)
	}
	if gts[0].Slots[0].Key() != "GradStudent::getInfo" {
		t.Errorf("key = %q", gts[0].Slots[0].Key())
	}
	// Base tables must not have been mutated by computing the derived ones.
	sts2, err := TablesOf(student, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if sts2[0].Slots[0].Impl != student {
		t.Error("base table mutated by derived override")
	}
}

func TestNewVirtualAppendsToPrimary(t *testing.T) {
	base := layout.NewClass("Base").AddVirtual("f")
	derived := layout.NewClass("Derived", base).AddVirtual("g")
	ts, err := TablesOf(derived, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("tables = %d", len(ts))
	}
	slots := ts[0].Slots
	if len(slots) != 2 || slots[0].Name != "f" || slots[1].Name != "g" {
		t.Fatalf("slots = %+v", slots)
	}
	if slots[0].Impl != base || slots[1].Impl != derived {
		t.Errorf("impls = %v/%v", slots[0].Impl, slots[1].Impl)
	}
}

func TestMultipleInheritanceSecondaryTable(t *testing.T) {
	a := layout.NewClass("A").AddVirtual("fa").AddField("x", layout.Int)
	b := layout.NewClass("B").AddVirtual("fb").AddField("y", layout.Int)
	c := layout.NewClass("C", a, b).AddVirtual("fa").AddVirtual("fb").AddVirtual("fc")

	ts, err := TablesOf(c, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("tables = %d, want 2", len(ts))
	}
	if ts[0].VPtrOffset != 0 || ts[1].VPtrOffset != 8 {
		t.Errorf("vptr offsets = %d/%d, want 0/8", ts[0].VPtrOffset, ts[1].VPtrOffset)
	}
	// Primary: fa (override by C) then fc (new).
	if len(ts[0].Slots) != 2 || ts[0].Slots[0].Name != "fa" || ts[0].Slots[0].Impl != c {
		t.Errorf("primary slots = %+v", ts[0].Slots)
	}
	if ts[0].Slots[1].Name != "fc" || ts[0].Slots[1].Impl != c {
		t.Errorf("primary new slot = %+v", ts[0].Slots[1])
	}
	// Secondary: fb overridden by C.
	if len(ts[1].Slots) != 1 || ts[1].Slots[0].Name != "fb" || ts[1].Slots[0].Impl != c {
		t.Errorf("secondary slots = %+v", ts[1].Slots)
	}
}

func TestTableCountMatchesLayoutVPtrs(t *testing.T) {
	a := layout.NewClass("A").AddVirtual("fa")
	b := layout.NewClass("B").AddVirtual("fb")
	c := layout.NewClass("C", a, b)
	d := layout.NewClass("D", c).AddVirtual("fd")

	l, err := layout.Of(d, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := TablesOf(d, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(l.VPtrOffsets) {
		t.Errorf("tables=%d vptrs=%d", len(ts), len(l.VPtrOffsets))
	}
	for i, tb := range ts {
		if tb.VPtrOffset != l.VPtrOffsets[i] {
			t.Errorf("table %d at %d, layout vptr at %d", i, tb.VPtrOffset, l.VPtrOffsets[i])
		}
	}
}

func TestSlotOf(t *testing.T) {
	a := layout.NewClass("A").AddVirtual("fa")
	b := layout.NewClass("B").AddVirtual("fb")
	c := layout.NewClass("C", a, b)
	ts, err := TablesOf(c, layout.ILP32)
	if err != nil {
		t.Fatal(err)
	}
	ti, si, err := SlotOf(ts, "fb")
	if err != nil {
		t.Fatal(err)
	}
	if ti != 1 || si != 0 {
		t.Errorf("fb at table %d slot %d, want 1/0", ti, si)
	}
	if _, _, err := SlotOf(ts, "nope"); err == nil {
		t.Error("missing method lookup succeeded")
	}
}

func TestTablesOfInvalidClass(t *testing.T) {
	c := layout.NewClass("C").AddField("x", nil)
	if _, err := TablesOf(c, layout.ILP32); err == nil {
		t.Error("want error for invalid class")
	}
}

func TestMethodKey(t *testing.T) {
	c := layout.NewClass("Student")
	if got := MethodKey(c, "getInfo"); got != "Student::getInfo" {
		t.Errorf("key = %q", got)
	}
}
