// Package repro is a from-scratch reproduction of "A New Class of Buffer
// Overflow Attacks" (Kundu & Bertino, ICDCS 2011): the C++ placement-new
// buffer overflow class, demonstrated on a simulated 32-bit process and
// crossed against the paper's §5 protection techniques.
//
// The library lives under internal/:
//
//   - internal/mem      — simulated virtual address space (segments, MMU)
//   - internal/layout   — C++ object layout (inheritance, vptr, padding)
//   - internal/vtab     — virtual-table construction
//   - internal/heap     — free-list heap allocator
//   - internal/stackm   — call stack with saved FP / StackGuard canary
//   - internal/object   — typed object views (unchecked, like C++)
//   - internal/core     — placement new, checked placement, pools, leaks
//   - internal/machine  — the victim process: calls, hijack dispatch, NX
//   - internal/serial   — remote-object wire format and deserializers
//   - internal/attack   — the 23-scenario attack catalogue (§3–§4)
//   - internal/defense  — defense configurations (§5)
//   - internal/analyzer — the §7 static-analysis tool + baseline scanner
//   - internal/experiments, internal/report — the E1–E17 harness
//
// Binaries: cmd/pnattack, cmd/pnscan, cmd/pnbench. Runnable examples:
// examples/quickstart, examples/webservice, examples/infoleak,
// examples/memorypool. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro

// Version identifies the reproduction release.
const Version = "1.0.0"
