package repro

// The reproduction acceptance test: every headline claim of the paper (and
// of EXPERIMENTS.md) asserted in one place, end to end, over the public
// harness entry points rather than package internals.

import (
	"strings"
	"testing"

	"repro/internal/analyzer"
	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/experiments"
)

func TestVersion(t *testing.T) {
	if Version == "" {
		t.Fatal("empty version")
	}
}

// TestReproductionHeadlines asserts the paper's core claims across the
// full matrix in one pass.
func TestReproductionHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow in -short mode")
	}
	configs := defense.Catalog()
	matrix, err := attack.RunMatrix(configs)
	if err != nil {
		t.Fatal(err)
	}
	status := func(scenario, cfg string) string {
		row, ok := matrix[scenario]
		if !ok {
			t.Fatalf("scenario %q missing from matrix", scenario)
		}
		o, ok := row[cfg]
		if !ok {
			t.Fatalf("config %q missing from row %q", cfg, scenario)
		}
		return o.Status()
	}

	// §1: "We have demonstrated each of the attacks described in this
	// paper" — everything succeeds undefended.
	for id := range matrix {
		if got := status(id, "none"); got != "SUCCESS" {
			t.Errorf("undefended %s = %s", id, got)
		}
	}

	// §3.6.1 + §5.2: StackGuard detects the linear smash but the
	// selective write bypasses it; the return-address stack catches both.
	if status("stack-ret", "stackguard") != "detected" {
		t.Error("StackGuard missed the linear smash")
	}
	if status("canary-skip", "stackguard") != "SUCCESS" {
		t.Error("canary skip failed to bypass StackGuard")
	}
	if status("canary-skip", "shadowstack") != "detected" {
		t.Error("shadow stack missed the canary skip")
	}

	// §3.6.2: NX blocks code injection, not arc injection.
	if status("code-injection", "nx") != "prevented" {
		t.Error("NX failed to block code injection")
	}
	if status("arc-injection", "nx") != "SUCCESS" {
		t.Error("NX unexpectedly blocked arc injection")
	}

	// §5.1: checked placement prevents every oversized placement but not
	// the leaks (§4.3/§4.5) or same-size type confusion (§2.5(3)).
	for _, id := range []string{"construct-overflow", "stack-ret", "vptr-bss", "array-2step-stack"} {
		if status(id, "checked-pnew") != "prevented" {
			t.Errorf("checked placement missed %s", id)
		}
	}
	for _, id := range []string{"infoleak-array", "memleak", "type-confusion"} {
		if status(id, "checked-pnew") != "SUCCESS" {
			t.Errorf("checked placement unexpectedly stopped %s", id)
		}
	}
	if status("type-confusion", "typed-pnew") != "prevented" {
		t.Error("typed placement missed the type confusion")
	}

	// §5.2 limits: the runtime guard cannot see internal overflows or raw
	// copies; the placement-aware red zones can.
	if status("internal-overflow", "runtime-guard") != "SUCCESS" {
		t.Error("runtime guard unexpectedly caught the internal overflow")
	}
	if status("internal-overflow", "memguard") != "detected" {
		t.Error("memguard missed the internal overflow")
	}
	if status("indirect-overflow", "memguard") != "detected" {
		t.Error("memguard missed the indirect copy")
	}

	// §5.1 remedies are surgical: sanitize stops exactly the info leaks,
	// placement delete exactly the memory leak, heap red zones exactly
	// the heap overflow.
	if status("infoleak-array", "sanitize") == "SUCCESS" || status("infoleak-object", "sanitize") == "SUCCESS" {
		t.Error("sanitization failed")
	}
	if status("memleak", "placement-delete") == "SUCCESS" {
		t.Error("placement delete failed")
	}
	if status("heap-overflow", "heapguard") != "detected" {
		t.Error("heap red zones missed the heap overflow")
	}

	// Everything together leaves nothing standing.
	for id := range matrix {
		if got := status(id, "hardened"); got == "SUCCESS" {
			t.Errorf("hardened config lost to %s", id)
		}
	}
}

// TestAnalyzerHeadline asserts the §1/§7 static-analysis claims.
func TestAnalyzerHeadline(t *testing.T) {
	var vulns, analyzerHits, baselineHits int
	for _, e := range analyzer.Corpus() {
		r, err := analyzer.Analyze(e.Src, analyzer.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		bf, err := analyzer.Baseline(e.Src)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Vulnerable || len(e.WantCodes) == 0 {
			continue
		}
		vulns++
		hit := true
		for _, c := range e.WantCodes {
			if !r.HasCode(c) {
				hit = false
			}
		}
		if hit {
			analyzerHits++
		}
		if len(bf) > 0 {
			baselineHits++
		}
	}
	if analyzerHits != vulns {
		t.Errorf("analyzer found %d/%d placement-new vulns", analyzerHits, vulns)
	}
	if baselineHits != 0 {
		t.Errorf("baseline found %d placement-new vulns, the paper's claim is zero", baselineHits)
	}
}

// TestExperimentIndexComplete: every experiment indexed in EXPERIMENTS.md
// runs and produces a non-empty table whose title carries the id.
func TestExperimentIndexComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("slow in -short mode")
	}
	ids := map[string]bool{}
	for _, e := range experiments.All() {
		tb, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if tb.NumRows() == 0 || !strings.Contains(tb.Title, e.ID) {
			t.Errorf("%s: malformed table %q", e.ID, tb.Title)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"E1", "E3", "E15", "E16", "E17", "E18"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}
